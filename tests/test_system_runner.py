"""Integration tests for system wiring and the experiment runner."""

import pytest

from repro.config import CoreConfig, DramConfig, SystemConfig, baseline_system
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.factory import SCHEDULER_NAMES, make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

INSTRUCTIONS = 20_000


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=INSTRUCTIONS)


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(num_cores=0)
    with pytest.raises(ValueError):
        CoreConfig(window_size=0)
    with pytest.raises(ValueError):
        DramConfig(write_drain_high=1, write_drain_low=5)


def test_baseline_channel_scaling():
    assert baseline_system(4).dram.num_channels == 1
    assert baseline_system(8).dram.num_channels == 2
    assert baseline_system(16).dram.num_channels == 4


def test_make_scheduler_names():
    for name in SCHEDULER_NAMES:
        scheduler = make_scheduler(name, 4)
        assert scheduler.select is not None
    with pytest.raises(ValueError):
        make_scheduler("SJF", 4)


def test_make_scheduler_case_insensitive():
    assert make_scheduler("par-bs", 4).name.startswith("PAR-BS")
    assert make_scheduler("frfcfs", 4).name == "FR-FCFS"


def test_system_requires_matching_trace_count():
    config = baseline_system(4)
    with pytest.raises(ValueError):
        System(config, make_scheduler("FCFS", 4), traces=[Trace([])])


def test_system_runs_simple_traces():
    config = baseline_system(2) if False else SystemConfig(num_cores=2)
    traces = [
        Trace([TraceEntry(10, i * 64 + t * (1 << 20)) for i in range(50)])
        for t in range(2)
    ]
    system = System(SystemConfig(num_cores=2), make_scheduler("FR-FCFS", 2), traces)
    finish = system.run()
    assert finish > 0
    assert all(core.snapshot is not None for core in system.cores)


def test_system_with_caches_filters_traffic():
    # A trace that re-touches the same lines: caches absorb the repeats.
    entries = [TraceEntry(10, (i % 8) * 64) for i in range(100)]
    traces = [Trace(entries)]
    system = System(
        SystemConfig(num_cores=1), make_scheduler("FR-FCFS", 1), traces,
        use_caches=True,
    )
    system.run()
    assert system.hierarchies[0].dram_reads <= 8
    assert system.cores[0].snapshot is not None


def test_alone_stats_cached(runner):
    first = runner.alone("hmmer")
    second = runner.alone("hmmer")
    assert first is second
    assert first.ipc > 0
    assert first.cycles > 0


def test_run_workload_produces_full_result(runner):
    result = runner.run_workload(["hmmer", "astar", "gromacs", "sjeng"], "FR-FCFS")
    assert result.scheduler == "FR-FCFS"
    assert len(result.threads) == 4
    assert result.unfairness >= 1.0
    assert 0 < result.weighted_speedup <= 4.0
    assert 0 < result.hmean_speedup <= 1.0
    assert result.sim_cycles > 0


def test_run_workload_validates_length(runner):
    with pytest.raises(ValueError):
        runner.run_workload(["mcf"], "FCFS")


def test_compare_schedulers_covers_all(runner):
    results = runner.compare_schedulers(["gromacs", "sjeng", "gobmk", "dealII"])
    assert list(results) == SCHEDULER_NAMES


def test_repeated_benchmark_gets_distinct_traces(runner):
    a = runner.trace_for("lbm", 0)
    b = runner.trace_for("lbm", 1)
    assert list(a) != list(b)
    assert len(a) == len(b)


def test_trace_for_is_cached(runner):
    assert runner.trace_for("lbm", 0) is runner.trace_for("lbm", 0)


def test_scheduler_kwargs_forwarded(runner):
    result = runner.run_workload(
        ["hmmer", "astar", "gromacs", "sjeng"], "PAR-BS", marking_cap=1
    )
    assert result.scheduler == "PAR-BS"


def test_slowdowns_at_least_one(runner):
    result = runner.run_workload(["hmmer", "astar", "gromacs", "sjeng"], "PAR-BS")
    assert all(t.memory_slowdown >= 1.0 for t in result.threads)


def test_compute_only_thread_not_fabricated():
    """A thread that never touches memory must keep zeroed stats without
    a record being silently inserted into ``thread_stats`` (regression:
    the old defaultdict lookup fabricated an entry on read)."""
    from dataclasses import replace

    config = replace(baseline_system(4), num_cores=2)
    mem = Trace([TraceEntry(5, i * 64) for i in range(100)], name="mem")
    compute_only = Trace([], name="compute")
    system = System(
        config, make_scheduler("PAR-BS", 2), [mem, compute_only], repeat=False
    )
    system.run()

    assert sorted(system.controller.thread_stats) == [0]
    stats = system.controller.stats_for(1)
    assert stats.reads == 0 and stats.writes == 0
    assert stats.bank_level_parallelism == 0.0
    assert stats.row_hit_rate == 0.0
    assert stats.latency_max == 0
    # The read-only lookup must not have inserted anything.
    assert sorted(system.controller.thread_stats) == [0]
    assert system.controller.pending_reads(1) == 0


def test_default_instructions_env(monkeypatch):
    from repro.sim.runner import default_instructions

    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert default_instructions() == 150_000
    monkeypatch.delenv("REPRO_SCALE")
    assert default_instructions() == 300_000
