"""Unit tests for the evaluation metrics."""

import pytest

from repro.metrics.fairness import memory_slowdown, unfairness
from repro.metrics.speedup import hmean_speedup, weighted_speedup
from repro.metrics.summary import ThreadResult, WorkloadResult, geomean


def test_memory_slowdown_basic():
    assert memory_slowdown(2.0, 1.0) == 2.0


def test_memory_slowdown_floored_at_one():
    assert memory_slowdown(0.5, 1.0) == 1.0


def test_memory_slowdown_handles_zero_alone():
    # A thread with no memory stalls alone stays near slowdown 1.0 rather
    # than dividing by zero.
    assert memory_slowdown(0.0, 0.0) == 1.0


def test_memory_slowdown_rejects_negative():
    with pytest.raises(ValueError):
        memory_slowdown(-1.0, 1.0)


def test_unfairness_is_max_over_min():
    assert unfairness([2.0, 4.0, 1.0]) == 4.0


def test_unfairness_of_equal_slowdowns_is_one():
    assert unfairness([3.0, 3.0, 3.0]) == 1.0


def test_unfairness_accepts_mapping():
    assert unfairness({0: 1.0, 1: 2.0}) == 2.0


def test_unfairness_validation():
    with pytest.raises(ValueError):
        unfairness([])
    with pytest.raises(ValueError):
        unfairness([1.0, 0.0])


def test_weighted_speedup_sums_relative_ipcs():
    assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)


def test_weighted_speedup_max_equals_thread_count():
    assert weighted_speedup([2.0, 2.0], [2.0, 2.0]) == pytest.approx(2.0)


def test_hmean_speedup():
    assert hmean_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
    assert hmean_speedup([1.0, 3.0], [2.0, 3.0]) == pytest.approx(2 / (2 + 1))


def test_hmean_punishes_imbalance_more_than_weighted():
    balanced_w = weighted_speedup([1.0, 1.0], [2.0, 2.0])
    skewed_w = weighted_speedup([0.2, 1.8], [2.0, 2.0])
    assert balanced_w == pytest.approx(skewed_w)
    assert hmean_speedup([0.2, 1.8], [2.0, 2.0]) < hmean_speedup([1.0, 1.0], [2.0, 2.0])


def test_speedup_validation():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_speedup([], [])
    with pytest.raises(ValueError):
        hmean_speedup([0.0], [1.0])


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([5.0]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def make_thread(tid, ipc_shared, ipc_alone, mcpi_shared, mcpi_alone, **kw):
    defaults = dict(
        ast_per_req=100.0,
        blp_shared=1.0,
        blp_alone=1.0,
        row_hit_rate=0.5,
        worst_latency=1000,
    )
    defaults.update(kw)
    return ThreadResult(
        thread_id=tid,
        benchmark=f"bench{tid}",
        ipc_shared=ipc_shared,
        ipc_alone=ipc_alone,
        mcpi_shared=mcpi_shared,
        mcpi_alone=mcpi_alone,
        **defaults,
    )


def make_result():
    return WorkloadResult(
        scheduler="TEST",
        workload=("bench0", "bench1"),
        threads=(
            make_thread(0, 1.0, 2.0, 4.0, 1.0, worst_latency=2000),
            make_thread(1, 1.5, 2.0, 2.0, 1.0, ast_per_req=50.0),
        ),
    )


def test_workload_result_slowdowns():
    result = make_result()
    assert result.slowdowns() == {0: 4.0, 1: 2.0}
    assert result.unfairness == 2.0


def test_workload_result_speedups():
    result = make_result()
    assert result.weighted_speedup == pytest.approx(0.5 + 0.75)
    assert result.hmean_speedup == pytest.approx(2 / (2.0 + 4 / 3))


def test_workload_result_ast_and_wc():
    result = make_result()
    assert result.avg_stall_per_request == pytest.approx(75.0)
    assert result.worst_case_latency == 2000


def test_workload_result_describe():
    text = make_result().describe()
    assert "TEST" in text
    assert "bench0" in text
    assert "unfairness" in text
