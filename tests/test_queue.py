"""Lease-protocol unit tests: atomic claims, expiry, fencing.

The work-queue's correctness story is three invariants, each pinned
here directly against :class:`LeaseQueue` (no orchestrator, no pool):

* **atomic claim** — concurrent claimers against one shared database
  never receive the same job (``BEGIN IMMEDIATE`` serializes them);
* **expiry reclamation** — a lease whose deadline passed (dead or hung
  owner) is reclaimed and its job re-issued, with the campaign's
  ``reclaims`` counter recording the event;
* **fencing** — a reclaimed-then-resurrected worker holds a stale
  token: its heartbeats return ``None`` and its commits are rejected,
  so exactly one result ever lands no matter how the workers interleave.

Time never sleeps in these tests: every queue gets an injected clock.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign.queue import QUEUE_STATS, LeaseQueue
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import ResultStore
from repro.config import baseline_system
from repro.sim.runner import ExperimentRunner


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="queuetest",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=10_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def result():
    """One real WorkloadResult to commit (contents are irrelevant to the
    lease protocol; it just has to serialize)."""
    spec = _spec()
    job = spec.expand()[0]
    runner = ExperimentRunner(
        baseline_system(job.num_cores),
        instructions=5_000,
        seed=job.seed,
        cache_dir=None,
    )
    return runner.run_workload(
        list(job.workload), job.scheduler, **job.kwargs_dict()
    )


class Clock:
    """An injectable, manually advanced wall clock."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def store(tmp_path):
    spec = _spec()
    with ResultStore(tmp_path / "q.sqlite") as st:
        st.register(spec, spec.expand())
        yield st


def _keys():
    return [job.key for job in _spec().expand()]


def test_claims_are_disjoint_and_exhaustive(store):
    clock = Clock()
    a = LeaseQueue(store, _spec().fingerprint(), worker_id="a", clock=clock)
    b = LeaseQueue(store, _spec().fingerprint(), worker_id="b", clock=clock)
    keys = _keys()
    leases = []
    for queue in (a, b, a, b):
        leases.append(queue.claim_next(keys))
    assert all(lease is not None for lease in leases)
    assert len({lease.key for lease in leases}) == len(keys)
    # Every job is leased out now: both claimers see an empty queue.
    assert a.claim_next(keys) is None
    assert b.claim_next(keys) is None


def test_concurrent_claimers_never_share_a_job(tmp_path):
    """Racing claimers on separate connections split the grid cleanly."""
    spec = _spec(mix_count=4)  # 8 jobs
    path = tmp_path / "race.sqlite"
    with ResultStore(path) as st:
        st.register(spec, spec.expand())
    keys = [job.key for job in spec.expand()]
    claimed: list[list[str]] = [[], []]
    barrier = threading.Barrier(2)

    def worker(slot: int) -> None:
        with ResultStore(path) as st:
            queue = LeaseQueue(st, spec.fingerprint(), worker_id=f"w{slot}")
            barrier.wait()
            while True:
                lease = queue.claim_next(keys)
                if lease is None:
                    return
                claimed[slot].append(lease.key)

    threads = [threading.Thread(target=worker, args=(i,)) for i in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(claimed[0] + claimed[1]) == sorted(keys)
    assert not set(claimed[0]) & set(claimed[1])


def test_heartbeat_extends_the_deadline(store):
    clock = Clock()
    queue = LeaseQueue(
        store, _spec().fingerprint(), worker_id="w", lease_s=30.0, clock=clock
    )
    lease = queue.claim_next(_keys())
    assert lease.deadline == clock.now + 30.0
    clock.advance(20.0)
    renewed = queue.heartbeat(lease)
    assert renewed is not None
    assert renewed.deadline == clock.now + 30.0
    assert renewed.attempt == lease.attempt  # renewal never re-fences


def test_expired_lease_is_reclaimed_and_reissued(store):
    clock = Clock()
    fp = _spec().fingerprint()
    dead = LeaseQueue(store, fp, worker_id="dead", lease_s=10.0, clock=clock)
    live = LeaseQueue(store, fp, worker_id="live", lease_s=10.0, clock=clock)
    lost = dead.claim_next(_keys())
    # While the lease is live the job is invisible to other claimers
    # (only 3 of the 4 jobs remain claimable).
    assert live.claim_next([lost.key]) is None
    clock.advance(10.0)  # deadline is inclusive: <= now means expired
    before = QUEUE_STATS["leases_reclaimed"]
    regained = live.claim_next([lost.key])
    assert regained is not None
    assert regained.key == lost.key
    assert regained.attempt == lost.attempt + 1  # fencing token advanced
    assert QUEUE_STATS["leases_reclaimed"] == before + 1
    assert store.reclaim_count(fp) == 1


def test_reclaim_expired_sweeps_every_dead_lease(store):
    clock = Clock()
    fp = _spec().fingerprint()
    dead = LeaseQueue(store, fp, worker_id="dead", lease_s=5.0, clock=clock)
    keys = _keys()
    held = [dead.claim_next(keys) for _ in range(2)]
    clock.advance(6.0)
    sweeper = LeaseQueue(store, fp, worker_id="sweep", clock=clock)
    reclaimed = sweeper.reclaim_expired()
    assert sorted(reclaimed) == sorted(lease.key for lease in held)
    assert store.reclaim_count(fp) == 2
    assert store.leases_for(keys, now=clock.now) == {}


def test_fenced_double_complete_is_rejected(store, result):
    """The resurrection scenario: worker A claims, goes silent past the
    lease deadline, worker B reclaims and commits — then A comes back
    and tries to commit the same job.  Exactly one result may land."""
    clock = Clock()
    fp = _spec().fingerprint()
    a = LeaseQueue(store, fp, worker_id="a", lease_s=10.0, clock=clock)
    b = LeaseQueue(store, fp, worker_id="b", lease_s=10.0, clock=clock)
    stale = a.claim_next(_keys())
    clock.advance(11.0)  # A freezes; its lease expires
    fresh = b.claim_next([stale.key])
    assert fresh.key == stale.key
    assert b.complete(fresh, result, wall_time_s=2.0)
    # A resurrects: renewal and commit are both fenced out.
    before = QUEUE_STATS["leases_fenced"]
    assert a.heartbeat(stale) is None
    assert not a.complete(stale, result, wall_time_s=99.0)
    assert QUEUE_STATS["leases_fenced"] == before + 2
    # B's commit stands untouched: one attempt, B's wall time.
    row = store._conn.execute(
        "SELECT status, attempts, wall_time_s FROM jobs WHERE key = ?",
        (stale.key,),
    ).fetchone()
    assert (row["status"], row["attempts"], row["wall_time_s"]) == (
        "done",
        1,
        2.0,
    )


def test_stale_worker_cannot_fail_or_release_either(store):
    """Fencing covers the whole surface: fail() and release() from a
    reclaimed worker are no-ops too."""
    clock = Clock()
    fp = _spec().fingerprint()
    a = LeaseQueue(store, fp, worker_id="a", lease_s=10.0, clock=clock)
    b = LeaseQueue(store, fp, worker_id="b", lease_s=10.0, clock=clock)
    stale = a.claim_next(_keys())
    clock.advance(11.0)
    fresh = b.claim_next([stale.key])
    assert not a.fail(stale, "late failure from the dead")
    assert not a.release(stale)
    # B's live lease survived both attempts.
    live = store.leases_for([stale.key], now=clock.now)
    assert live[stale.key]["worker_id"] == "b"
    assert int(live[stale.key]["attempt"]) == fresh.attempt


def test_done_jobs_are_never_claimable(store, result):
    clock = Clock()
    fp = _spec().fingerprint()
    queue = LeaseQueue(store, fp, worker_id="w", clock=clock)
    lease = queue.claim_next(_keys())
    assert queue.complete(lease, result)
    assert queue.claim_next([lease.key]) is None
