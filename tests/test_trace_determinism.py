"""Runner-level observability tests: per-job trace files, telemetry on
results, and the serial-vs-parallel trace determinism contract.

The determinism contract (mirroring the golden-equivalence harness in
``test_rqindex.py``): a simulation's event stream is a pure function of
its job description, so running the same specs serially and under
``jobs=N`` must produce byte-identical per-job JSONL trace files —
request ids are run-relative, field order is pinned, and newline handling
is platform-independent.
"""

import json

from repro.config import baseline_system
from repro.obs import TraceConfig, read_jsonl
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.sim.factory import make_scheduler

WORKLOAD = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
INSTRUCTIONS = 5_000
SPECS = [
    (WORKLOAD, "PAR-BS", {}),
    (WORKLOAD, "FR-FCFS", {}),
]


def make_runner(trace=None, **kwargs):
    return ExperimentRunner(
        baseline_system(len(WORKLOAD)),
        instructions=INSTRUCTIONS,
        seed=0,
        trace=trace,
        **kwargs,
    )


# --------------------------------------------------------- trace files


def test_run_workload_writes_per_job_trace_file(tmp_path):
    cfg = TraceConfig(dir=str(tmp_path), sample_interval=1000, perfetto=True)
    runner = make_runner(trace=cfg, cache_dir=None)
    result = runner.run_workload(WORKLOAD, "PAR-BS")

    jsonl_files = sorted(tmp_path.glob("*.jsonl"))
    assert len(jsonl_files) == 1
    assert jsonl_files[0].name.startswith("PAR-BS-")
    events = read_jsonl(jsonl_files[0])
    assert any(e["ev"] == "batch.formed" for e in events)
    assert any(e["ev"] == "sample.tick" for e in events)

    perfetto_files = sorted(tmp_path.glob("*.perfetto.json"))
    assert len(perfetto_files) == 1
    with perfetto_files[0].open() as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]

    # Telemetry digest rides on the result (and survives describe()).
    assert result.telemetry is not None
    assert result.telemetry.samples
    assert result.telemetry.latency
    assert "latency p50=" in result.describe()


def test_scheduler_name_sanitized_in_filenames(tmp_path):
    cfg = TraceConfig(dir=str(tmp_path))
    runner = make_runner(trace=cfg, cache_dir=None)
    scheduler = make_scheduler("PAR-BS", len(WORKLOAD))
    runner.run_workload(WORKLOAD, scheduler)
    (path,) = tmp_path.glob("*.jsonl")
    # PAR-BS/full/max-total → slashes must not create directories.
    assert "/" not in path.name and path.parent == tmp_path


def test_inactive_trace_config_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env-dir"))
    # An explicit TraceConfig() overrides the environment: tracing off.
    runner = make_runner(trace=TraceConfig(), cache_dir=None)
    result = runner.run_workload(WORKLOAD, "FR-FCFS")
    assert not (tmp_path / "env-dir").exists()
    assert result.telemetry is None


def test_runner_resolves_trace_config_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "envtrace"))
    monkeypatch.setenv("REPRO_TRACE_EVENTS", "batch")
    runner = make_runner(cache_dir=None)
    assert runner.trace.dir == str(tmp_path / "envtrace")
    runner.run_workload(WORKLOAD, "PAR-BS")
    (path,) = (tmp_path / "envtrace").glob("*.jsonl")
    events = read_jsonl(path)
    assert events
    assert {e["ev"].split(".")[0] for e in events} == {"batch"}


# ----------------------------------------------- serial vs parallel


def test_trace_files_identical_serial_vs_parallel(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"

    serial = make_runner(trace=TraceConfig(dir=str(serial_dir)))
    serial_results = serial.run_many(SPECS, jobs=1)

    parallel = make_runner(trace=TraceConfig(dir=str(parallel_dir)))
    parallel_results = parallel.run_many(SPECS, jobs=2)

    serial_files = sorted(p.name for p in serial_dir.glob("*.jsonl"))
    parallel_files = sorted(p.name for p in parallel_dir.glob("*.jsonl"))
    assert len(serial_files) == len(SPECS)
    # Identical jobs produce identically named files in both modes.
    assert serial_files == parallel_files
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (
            parallel_dir / name
        ).read_bytes(), f"trace stream diverged for {name}"

    # And the results themselves are bit-identical, telemetry included.
    assert serial_results == parallel_results


# ------------------------------------------- satellite: result fields


def test_thread_result_surfaces_row_stats_and_latency(tmp_path):
    """Regression: row hits/conflicts and latencies were collected in
    ThreadMemStats but dropped from ThreadResult."""
    runner = make_runner(cache_dir=None)
    result = runner.run_workload(WORKLOAD, "FR-FCFS")

    # Independent reference run of the same shared system.
    traces = [runner.trace_for(b) for b in WORKLOAD]
    system = System(
        runner.config, make_scheduler("FR-FCFS", len(WORKLOAD)), traces
    )
    system.run()

    for thread in result.threads:
        mem = system.controller.stats_for(thread.thread_id)
        assert thread.row_hits == mem.row_hits > 0
        assert thread.row_conflicts == mem.row_conflicts
        assert thread.latency_avg == mem.avg_latency > 0
        assert thread.latency_max == thread.worst_latency == mem.latency_max
        total = thread.row_hits + thread.row_conflicts
        assert thread.row_hit_rate == mem.row_hit_rate
        assert total >= mem.reads  # every serviced request hit or conflicted

    assert result.total_row_hits == sum(t.row_hits for t in result.threads)
    assert 0.0 < result.row_hit_rate < 1.0
    # The human summary now reports the new fields.
    assert "rowhit=" in result.describe()
    assert "lat avg=" in result.describe()


def test_cache_report_one_liner():
    runner = make_runner(cache_dir=None)
    report = runner.cache_report()
    assert "hits" in report and "misses" in report and "writes" in report
