"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "table4" in out


def test_fig3_command(capsys):
    assert main(["fig3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_case_study_alias(capsys):
    assert main(["--instructions", "20000", "case-study", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "libquantum" in out
    assert "PAR-BS" in out


def test_aggregate_command(capsys):
    assert main(["--instructions", "20000", "aggregate", "--cores", "4", "--count", "1"]) == 0
    assert "aggregate" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["--instructions", "20000", "sweep", "ranking", "--count", "1"]) == 0
    assert "ranking" in capsys.readouterr().out


def test_jobs_flag_exports_repro_jobs(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert main(["--jobs", "3", "list"]) == 0
    assert os.environ.get("REPRO_JOBS") == "3"
    monkeypatch.delenv("REPRO_JOBS", raising=False)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
