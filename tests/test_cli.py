"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "table4" in out


def test_fig3_command(capsys):
    assert main(["fig3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_case_study_alias(capsys):
    assert main(["--instructions", "20000", "case-study", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "libquantum" in out
    assert "PAR-BS" in out


def test_aggregate_command(capsys):
    assert main(["--instructions", "20000", "aggregate", "--cores", "4", "--count", "1"]) == 0
    assert "aggregate" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["--instructions", "20000", "sweep", "ranking", "--count", "1"]) == 0
    assert "ranking" in capsys.readouterr().out


def test_jobs_flag_exports_repro_jobs(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert main(["--jobs", "3", "list"]) == 0
    assert os.environ.get("REPRO_JOBS") == "3"
    # Plain pop, not monkeypatch.delenv: the latter would snapshot the
    # just-exported value and restore it at teardown, leaking jobs=3 into
    # every later test.
    os.environ.pop("REPRO_JOBS", None)


def test_trace_flags_export_env(capsys, tmp_path):
    import os

    names = (
        "REPRO_TRACE",
        "REPRO_TRACE_EVENTS",
        "REPRO_SAMPLE_INTERVAL",
        "REPRO_TRACE_PERFETTO",
    )
    trace_dir = str(tmp_path / "traces")
    try:
        assert (
            main(
                [
                    "--trace", trace_dir,
                    "--trace-events", "batch,sched",
                    "--sample-interval", "500",
                    "--perfetto",
                    "list",
                ]
            )
            == 0
        )
        assert os.environ.get("REPRO_TRACE") == trace_dir
        assert os.environ.get("REPRO_TRACE_EVENTS") == "batch,sched"
        assert os.environ.get("REPRO_SAMPLE_INTERVAL") == "500"
        assert os.environ.get("REPRO_TRACE_PERFETTO") == "1"
    finally:
        for name in names:
            os.environ.pop(name, None)


def test_traced_experiment_writes_files(capsys, monkeypatch, tmp_path):
    trace_dir = tmp_path / "traces"
    monkeypatch.setenv("REPRO_TRACE", str(trace_dir))
    try:
        assert main(["--instructions", "20000", "case-study", "fig5"]) == 0
    finally:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert list(trace_dir.glob("*.jsonl")), "experiment left trace files"
    # Cache statistics route through the metrics registry now — they must
    # not interleave with experiment output on either stream.
    captured = capsys.readouterr()
    assert "[cache]" not in captured.err
    assert "[cache]" not in captured.out


def test_verbose_flag_enables_logging(capsys):
    import logging

    root = logging.getLogger()
    previous_handlers = root.handlers[:]
    previous_level = root.level
    try:
        assert main(["-v", "list"]) == 0
        # list short-circuits before any experiment; just check the flag
        # parsed and configured the root logger when no handlers existed.
    finally:
        root.handlers[:] = previous_handlers
        root.setLevel(previous_level)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
