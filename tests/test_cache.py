"""Unit tests for the cache model and MSHRs."""

import pytest

from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile


def small_cache(**kwargs):
    defaults = dict(size_bytes=1024, associativity=2, line_bytes=64)
    defaults.update(kwargs)
    return Cache(**defaults)


def test_parameter_validation():
    with pytest.raises(ValueError):
        Cache(0, 4)
    with pytest.raises(ValueError):
        Cache(1000, 3, 64)  # not divisible


def test_geometry():
    c = small_cache()
    assert c.num_sets == 8


def test_miss_then_fill_then_hit():
    c = small_cache()
    assert c.access(0).hit is False
    c.fill(0)
    assert c.access(0).hit is True
    assert c.stats.hits == 1
    assert c.stats.misses == 1


def test_access_does_not_allocate():
    c = small_cache()
    c.access(0)
    assert c.lookup(0) is False


def test_same_line_different_offsets_hit():
    c = small_cache()
    c.fill(0)
    assert c.access(63).hit is True
    assert c.access(64).hit is False


def test_lru_eviction_order():
    c = small_cache()  # 2-way
    set_stride = c.num_sets * c.line_bytes
    a, b, d = 0, set_stride, 2 * set_stride  # same set
    c.fill(a)
    c.fill(b)
    c.access(a)  # a is now MRU
    c.fill(d)  # evicts b (LRU)
    assert c.lookup(a) is True
    assert c.lookup(b) is False
    assert c.lookup(d) is True


def test_dirty_eviction_returns_writeback_address():
    c = small_cache()
    set_stride = c.num_sets * c.line_bytes
    c.fill(0, dirty=True)
    c.fill(set_stride)
    result = c.fill(2 * set_stride)
    assert result.writeback_address == 0
    assert c.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    c = small_cache()
    set_stride = c.num_sets * c.line_bytes
    c.fill(0)
    c.fill(set_stride)
    result = c.fill(2 * set_stride)
    assert result.writeback_address is None
    assert c.stats.evictions == 1


def test_write_access_marks_dirty():
    c = small_cache()
    c.fill(0)
    c.access(0, is_write=True)
    set_stride = c.num_sets * c.line_bytes
    c.fill(set_stride)
    result = c.fill(2 * set_stride)
    assert result.writeback_address == 0


def test_invalidate_reports_dirty():
    c = small_cache()
    c.fill(0, dirty=True)
    assert c.invalidate(0) is True
    assert c.lookup(0) is False
    assert c.invalidate(0) is False  # already gone


def test_fill_existing_line_is_noop_eviction():
    c = small_cache()
    c.fill(0)
    result = c.fill(0, dirty=True)
    assert result.hit is True
    assert c.stats.evictions == 0


def test_hit_rate():
    c = small_cache()
    c.fill(0)
    c.access(0)
    c.access(64)
    assert c.stats.hit_rate == pytest.approx(0.5)


# --- MSHRs -------------------------------------------------------------


def test_mshr_capacity_validation():
    with pytest.raises(ValueError):
        MshrFile(0)


def test_primary_miss_allocates():
    m = MshrFile(4)
    assert m.allocate(0, None) is True
    assert m.outstanding(0) is True
    assert len(m) == 1


def test_secondary_miss_merges():
    m = MshrFile(4)
    m.allocate(0, None)
    waiter = lambda: None
    assert m.allocate(0, waiter) is False
    assert m.merges == 1
    assert len(m) == 1


def test_complete_returns_waiters():
    m = MshrFile(4)
    seen = []
    m.allocate(0, lambda: seen.append("a"))
    m.allocate(0, lambda: seen.append("b"))
    for waiter in m.complete(0):
        waiter()
    assert seen == ["a", "b"]
    assert m.outstanding(0) is False


def test_complete_unknown_raises():
    with pytest.raises(KeyError):
        MshrFile(4).complete(123)


def test_full_file_rejects_primary_miss():
    m = MshrFile(2)
    m.allocate(0, None)
    m.allocate(64, None)
    assert m.full is True
    with pytest.raises(RuntimeError):
        m.allocate(128, None)
    # Merging into an existing entry is still allowed when full.
    assert m.allocate(0, lambda: None) is False
