"""Tests for the fast simulation backend and its bit-identity contract.

The fast backend (``backend="fast"``) must be *the same simulation* as the
reference python backend — identical command streams, cycles, statistics
and metrics — only cheaper per event.  These tests pin that contract:

- golden equivalence across every scheduler x {4, 8} cores x 2 seeds,
  compared command-by-command via :func:`repro.sim.verify.compare_systems`;
- the flat-array timing kernel against ``Bank.service`` + ``DataBus``;
- ``fast_access``-constructed requests against the dataclass constructor,
  field for field;
- strict-guard runs on the fast path (every invariant holds);
- the runner's ``verify`` mode and its divergence detection;
- serial/parallel equality of fast-backend results through the pool.
"""

from __future__ import annotations

import dataclasses
import random
from functools import lru_cache

import pytest

from repro.config import baseline_system
from repro.dram.bank import Bank
from repro.dram.bus import DataBus
from repro.dram.fastbank import FastDramState
from repro.dram.fastctl import FastDramPort, FastMemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.envknobs import EnvKnobError
from repro.events import EventQueue
from repro.guard.invariants import Guard
from repro.sim.factory import SCHEDULER_NAMES, make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.sim.verify import (
    BACKENDS,
    BackendMismatch,
    backend_from_env,
    compare_results,
    compare_systems,
)

INSTRUCTIONS = 8_000
WORKLOADS = {
    4: ("libquantum", "mcf", "GemsFDTD", "xalancbmk"),
    8: (
        "libquantum",
        "mcf",
        "GemsFDTD",
        "xalancbmk",
        "omnetpp",
        "hmmer",
        "lbm",
        "astar",
    ),
}


@lru_cache(maxsize=None)
def _traces(cores: int, seed: int):
    runner = ExperimentRunner(
        baseline_system(cores), instructions=INSTRUCTIONS, seed=seed, cache_dir=None
    )
    return tuple(runner.trace_for(b) for b in WORKLOADS[cores])


def _run(backend: str, scheduler: str, cores: int, seed: int, guard=None) -> System:
    system = System(
        baseline_system(cores),
        make_scheduler(scheduler, cores),
        list(_traces(cores, seed)),
        repeat=True,
        backend=backend,
        guard=guard,
    )
    system.controller.command_log = []
    system.run()
    return system


# -- golden equivalence --------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("cores", [4, 8])
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_fast_backend_bit_identical(scheduler, cores, seed):
    reference = _run("python", scheduler, cores, seed)
    fast = _run("fast", scheduler, cores, seed)
    assert len(reference.controller.command_log) > 0
    # Full comparison: command stream, cycles, events, final bank/bus
    # state, per-thread stats, core snapshots.  Raises on divergence.
    compare_systems(reference, fast)


# -- the timing kernel ---------------------------------------------------------
def test_fastbank_kernel_matches_bank_service():
    """``FastDramState.service_tuple`` is the kernel of record: bit-identical
    to ``Bank.service`` + ``DataBus.reserve`` over a randomized command mix
    (hits, conflicts, closed-row activates, write recovery, bus contention,
    back-pressured and idle starts)."""
    timing = baseline_system(4).dram.timing
    bank = Bank(timing)
    bus = DataBus(timing)
    fast = FastDramState(timing, num_channels=1, num_banks=1)
    rng = random.Random(42)
    now = 0
    for _ in range(500):
        row = rng.randrange(6)
        is_write = rng.random() < 0.3
        request = MemoryRequest(
            thread_id=0,
            address=row * 64,
            channel=0,
            bank=0,
            row=row,
            type=RequestType.WRITE if is_write else RequestType.READ,
        )
        expected = bank.service(request, now, bus)
        got = fast.service_tuple(0, 0, row, is_write, now)
        assert got == expected.as_tuple()
        assert fast.state_tuple(0) == bank.state_tuple()
        assert fast.bus_state_tuple(0) == bus.state_tuple()
        # Sometimes jump past the busy window, sometimes pile on.
        now += rng.choice((0, 1, timing.tCL, expected.completion - now + 1))


def test_fast_access_request_matches_dataclass_constructor():
    """``fast_access`` builds requests by direct slot stores; every dataclass
    field must come out exactly as the generated constructor would set it."""
    config = baseline_system(4)
    queue = EventQueue()
    controller = FastMemoryController(
        queue, config.dram, make_scheduler("FR-FCFS", 4), num_threads=4
    )
    port = FastDramPort(controller, config.dram.mapping())
    address = 7 * 64 + (3 << 16)
    port.fast_access(2, address, False, None, None)
    fast_request = next(iter(controller.buffered_reads()))

    coords = config.dram.mapping().map(address)
    reference = MemoryRequest(
        thread_id=2,
        address=address,
        channel=coords.channel,
        bank=coords.bank,
        row=coords.row,
        type=RequestType.READ,
        arrival_time=queue.now,
    )
    for field in dataclasses.fields(MemoryRequest):
        if field.name == "request_id":  # globally allocated, run-relative
            continue
        if field.name == "buf_pos":  # set by enqueue, not construction
            assert fast_request.buf_pos == 0
            continue
        assert getattr(fast_request, field.name) == getattr(
            reference, field.name
        ), field.name
    assert fast_request.is_read is True


# -- guard ---------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ["PAR-BS", "STFM"])
def test_fast_backend_under_strict_guard(scheduler):
    """Every runtime invariant holds on the fast path (strict mode raises
    on the first violation, so completing the run is the assertion)."""
    guard = Guard(mode="strict")
    _run("fast", scheduler, 4, 0, guard=guard)
    assert guard.violations == []


def test_fast_backend_guard_check_mode_collects_nothing():
    guard = Guard(mode="check")
    _run("fast", "FR-FCFS", 4, 0, guard=guard)
    assert guard.violations == []


# -- verify mode ---------------------------------------------------------------
def test_verify_mode_runs_and_results_match_python(tmp_path):
    results = {}
    for backend in ("python", "verify", "fast"):
        runner = ExperimentRunner(
            baseline_system(4),
            instructions=INSTRUCTIONS,
            seed=0,
            cache_dir=tmp_path / backend,
            backend=backend,
        )
        results[backend] = runner.run_workload(list(WORKLOADS[4]), "PAR-BS")
    assert results["python"] == results["verify"]
    # The raw event split is backend-variant by contract (the fast path
    # elides wakes); everything else — including the *logical* event
    # count — must agree exactly.
    compare_results(results["python"], results["fast"])
    assert results["python"].events_logical == results["fast"].events_logical


def test_workload_result_event_counters_pin_python_processed_count(tmp_path):
    """WorkloadResult surfaces the event accounting: the python backend
    reports processed == logical with nothing elided and no kernel
    rebuilds, and the fast backend's processed + elided lands exactly on
    the python backend's processed count."""
    results = {}
    for backend in ("python", "fast"):
        runner = ExperimentRunner(
            baseline_system(4),
            instructions=INSTRUCTIONS,
            seed=0,
            cache_dir=tmp_path / backend,
            backend=backend,
        )
        results[backend] = runner.run_workload(list(WORKLOADS[4]), "FR-FCFS")
    py, fast = results["python"], results["fast"]
    assert py.events_processed > 0
    assert py.events_elided == 0
    assert py.min_rebuilds == 0
    assert py.events_logical == py.events_processed
    assert fast.events_elided > 0
    assert fast.events_processed + fast.events_elided == py.events_processed
    assert fast.events_logical == py.events_logical
    assert fast.min_rebuilds >= 0
    assert "min-rebuilds" in fast.describe()


def test_verify_mode_requires_factory_name():
    runner = ExperimentRunner(
        baseline_system(4),
        instructions=INSTRUCTIONS,
        seed=0,
        cache_dir=None,
        backend="verify",
    )
    with pytest.raises(ValueError, match="factory name"):
        runner.run_workload(list(WORKLOADS[4]), make_scheduler("FR-FCFS", 4))


def test_compare_systems_detects_divergence():
    reference = _run("python", "FR-FCFS", 4, 0)
    fast = _run("fast", "FR-FCFS", 4, 0)
    # Tamper with one command: the mismatch must name it.
    saved = fast.controller.command_log[10]
    fast.controller.command_log[10] = saved[:5] + (saved[5] + 1,) + saved[6:]
    with pytest.raises(BackendMismatch, match="command 10"):
        compare_systems(reference, fast)
    fast.controller.command_log[10] = saved
    compare_systems(reference, fast)  # restored: clean again
    # A truncated stream is a length divergence, not an index error.
    fast.controller.command_log.pop()
    with pytest.raises(BackendMismatch, match="lengths diverge"):
        compare_systems(reference, fast)


def test_compare_systems_requires_command_logs():
    reference = _run("python", "FCFS", 4, 0)
    fast = _run("fast", "FCFS", 4, 0)
    fast.controller.command_log = None
    with pytest.raises(ValueError, match="command_log"):
        compare_systems(reference, fast)


# -- backend selection ---------------------------------------------------------
def test_backend_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert backend_from_env() == "python"
    monkeypatch.setenv("REPRO_BACKEND", "FAST")
    assert backend_from_env() == "fast"
    monkeypatch.setenv("REPRO_BACKEND", "warp")
    with pytest.raises(EnvKnobError):
        backend_from_env()


def test_runner_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown simulation backend"):
        ExperimentRunner(baseline_system(4), backend="warp")
    with pytest.raises(ValueError):
        System(
            baseline_system(4),
            make_scheduler("FR-FCFS", 4),
            list(_traces(4, 0)),
            backend="warp",
        )
    assert set(BACKENDS) == {"python", "fast", "verify"}


# -- pool ----------------------------------------------------------------------
def test_pool_fast_backend_serial_parallel_identical(tmp_path):
    """Fast-backend results are byte-identical whether the simulations run
    serially or fan out over pool workers (separate caches, so the parallel
    pass recomputes everything rather than reading serial artifacts)."""

    def run(jobs: int, tag: str):
        runner = ExperimentRunner(
            baseline_system(4),
            instructions=INSTRUCTIONS,
            seed=0,
            cache_dir=tmp_path / tag,
            backend="fast",
        )
        return runner.compare_schedulers(
            list(WORKLOADS[4]), ["FR-FCFS", "PAR-BS"], jobs=jobs
        )

    assert run(1, "serial") == run(2, "parallel")
