"""Traced workloads through the runner, campaign layer and CLI.

The load-bearing property everywhere here is *content addressing*: a
trace's identity is the SHA-256 of its decompressed bytes plus the
decoder layout, never its path or alias — so job keys, campaign
fingerprints and stored results survive renames, moves and
recompression, while any content change re-simulates.
"""

from __future__ import annotations

import shutil

import pytest

from repro.__main__ import main
from repro.campaign.manifest import build_manifest
from repro.campaign.spec import load_spec, spec_from_dict
from repro.config import baseline_system
from repro.metrics.summary import ThreadResult
from repro.sim.runner import ExperimentRunner
from repro.traces import ensure_sample_trace, trace_content_sha256
from repro.workloads.mixes import TRACE_MIXES, UnknownMixError, get_mix

INSTR = 3000


def spec_dict(**overrides):
    base = {
        "name": "traced",
        "schedulers": ["PAR-BS"],
        "num_cores": [4],
        "mix_count": 0,
        "seeds": [0],
        "instructions": INSTR,
        "mixes": [["trace:stream-hi", "trace:chase-lo", "mcf", "libquantum"]],
    }
    base.update(overrides)
    return base


# -- mixes registry -----------------------------------------------------------
def test_trace_mix_suite_registered():
    for name in ("tmix1", "tmix2", "tmix3", "tmix4", "tmix5", "tmix6", "tmix7"):
        mix = get_mix(name)
        assert len(mix) == 4
        assert mix == list(TRACE_MIXES[name])
    assert all(b.startswith("trace:") for b in get_mix("tmix1"))
    assert any(not b.startswith("trace:") for b in get_mix("tmix7"))


def test_get_mix_returns_a_copy():
    get_mix("tmix1").append("mutated")
    assert "mutated" not in get_mix("tmix1")


def test_get_mix_unknown_suggests_and_is_a_keyerror():
    with pytest.raises(UnknownMixError) as exc_info:
        get_mix("tmix11")
    message = str(exc_info.value)
    assert "did you mean" in message
    assert "tmix1" in message
    # Callers that catch plain KeyError keep working.
    with pytest.raises(KeyError):
        get_mix("fig8_1")


# -- runner -------------------------------------------------------------------
def test_canonical_workload_is_identity_for_synthetic():
    runner = ExperimentRunner(baseline_system(4), instructions=INSTR)
    names = ["mcf", "libquantum", "omnetpp", "hmmer"]
    assert runner.canonical_workload(names) == names


def test_job_key_survives_rename_and_recompression(tmp_path):
    sample = ensure_sample_trace("stream-hi")
    moved = tmp_path / "totally-different-name.bin"
    shutil.copy(sample, moved)

    by_name = ExperimentRunner(baseline_system(2), instructions=INSTR)
    by_alias = ExperimentRunner(
        baseline_system(2),
        instructions=INSTR,
        trace_files={"myapp": str(moved)},
    )
    workload = ["trace:stream-hi", "mcf"]
    aliased = ["trace:myapp", "mcf"]
    assert by_name.canonical_workload(workload) == by_alias.canonical_workload(
        aliased
    )
    # A different decoder is a different simulation.
    other = ExperimentRunner(
        baseline_system(2), instructions=INSTR, decoder="paper"
    )
    assert by_name.canonical_workload(workload) != other.canonical_workload(
        workload
    )


def test_unknown_trace_entry_raises_with_known_names():
    runner = ExperimentRunner(baseline_system(2), instructions=INSTR)
    with pytest.raises(ValueError, match="stream-hi"):
        runner.resolve_trace("trace:no-such-trace")


def test_traced_mix_bit_identical_under_verify_backend():
    """Traced threads flow through the same python/fast compare path as
    synthetic ones; verify raises on the first divergence."""
    runner = ExperimentRunner(
        baseline_system(4), instructions=INSTR, backend="verify"
    )
    result = runner.run_workload(get_mix("tmix7"), "PAR-BS")
    traced = [t for t in result.threads if t.benchmark.startswith("trace:")]
    assert len(traced) == 2
    for thread in traced:
        assert thread.requests_read > 0


def _thread_result(**overrides):
    base = dict(
        thread_id=0,
        benchmark="mcf",
        ipc_shared=0.5,
        ipc_alone=1.0,
        mcpi_shared=2.0,
        mcpi_alone=1.0,
        ast_per_req=100.0,
        blp_shared=1.5,
        blp_alone=2.0,
        row_hit_rate=0.5,
        worst_latency=100,
    )
    base.update(overrides)
    return ThreadResult(**base)


def test_thread_result_describe_shows_ingest_provenance():
    assert "trace[" not in _thread_result().describe()
    traced = _thread_result(
        benchmark="trace:x", requests_read=982, lines_skipped=3, truncated=True
    )
    assert "trace[reqs=982 skipped=3 truncated]" in traced.describe()
    untruncated = _thread_result(benchmark="trace:x", requests_read=7)
    text = untruncated.describe()
    assert "trace[reqs=7 skipped=0]" in text and "truncated" not in text


# -- campaign specs -----------------------------------------------------------
def test_spec_accepts_registered_trace_mix_names():
    spec = spec_from_dict(spec_dict(mixes=["tmix2"]))
    assert spec.mixes == (tuple(TRACE_MIXES["tmix2"]),)


def test_spec_rejects_undeclared_trace_alias():
    with pytest.raises(ValueError, match="unknown traces"):
        spec_from_dict(spec_dict(mixes=[["trace:undeclared"] * 4]))


def test_spec_verifies_pinned_hash(tmp_path):
    sample = ensure_sample_trace("stream-hi")
    local = tmp_path / "app.gz"
    shutil.copy(sample, local)
    good = trace_content_sha256(local)
    spec = spec_from_dict(
        spec_dict(
            mixes=[["trace:myapp"] * 4],
            trace_files={"myapp": {"path": str(local), "sha256": good}},
        )
    )
    assert spec.trace_hashes()["myapp"] == good
    with pytest.raises(ValueError, match="does not match"):
        spec_from_dict(
            spec_dict(
                mixes=[["trace:myapp"] * 4],
                trace_files={"myapp": {"path": str(local), "sha256": "0" * 64}},
            )
        )
    with pytest.raises(ValueError, match="not found"):
        spec_from_dict(
            spec_dict(
                mixes=[["trace:myapp"] * 4],
                trace_files={"myapp": str(tmp_path / "gone.gz")},
            )
        )


def test_job_keys_and_fingerprint_are_path_independent(tmp_path):
    sample = ensure_sample_trace("stream-hi")
    here = tmp_path / "here.gz"
    there = tmp_path / "elsewhere" / "renamed.gz"
    there.parent.mkdir()
    shutil.copy(sample, here)
    shutil.copy(sample, there)

    def make(path):
        return spec_from_dict(
            spec_dict(
                mixes=[["trace:myapp", "trace:chase-lo", "mcf", "libquantum"]],
                trace_files={"myapp": str(path)},
            )
        )

    a, b = make(here), make(there)
    assert a.fingerprint() == b.fingerprint()
    assert [j.key for j in a.expand()] == [j.key for j in b.expand()]
    # The alias and the sample name address the same bytes -> same keys.
    by_name = spec_from_dict(spec_dict())
    assert [j.key for j in by_name.expand()] == [j.key for j in a.expand()]
    # ... but the campaign fingerprint reflects the spec text (different
    # alias), which is what campaign stores group rows by.
    assert by_name.fingerprint() != a.fingerprint()


def test_job_key_changes_with_content_and_decoder(tmp_path):
    sample = ensure_sample_trace("stream-hi")
    local = tmp_path / "app.gz"
    shutil.copy(sample, local)
    base = spec_from_dict(
        spec_dict(mixes=[["trace:myapp"] * 4], trace_files={"myapp": str(local)})
    )
    other_decoder = spec_from_dict(
        spec_dict(
            mixes=[["trace:myapp"] * 4],
            trace_files={"myapp": str(local)},
            decoder="paper",
        )
    )
    assert base.expand()[0].key != other_decoder.expand()[0].key
    different = tmp_path / "other.gz"
    shutil.copy(ensure_sample_trace("chase-lo"), different)
    changed = spec_from_dict(
        spec_dict(
            mixes=[["trace:myapp"] * 4], trace_files={"myapp": str(different)}
        )
    )
    assert base.expand()[0].key != changed.expand()[0].key


def test_spec_to_dict_round_trips_traces(tmp_path):
    sample = ensure_sample_trace("stream-hi")
    local = tmp_path / "app.gz"
    shutil.copy(sample, local)
    spec = spec_from_dict(
        spec_dict(mixes=[["trace:myapp"] * 4], trace_files={"myapp": str(local)})
    )
    again = spec_from_dict(spec.to_dict())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    # Untraced specs serialize without the trace keys at all, keeping
    # pre-existing fingerprints byte-identical.
    untraced = spec_from_dict(
        spec_dict(mixes=[["mcf", "libquantum", "omnetpp", "hmmer"]])
    )
    data = untraced.to_dict()
    assert "trace_files" not in data and "decoder" not in data


def test_manifest_records_trace_hashes():
    spec = spec_from_dict(spec_dict())
    manifest = build_manifest(spec, environ={"REPRO_TRACE_DIR": "/tmp/t"})
    assert manifest["trace_files"] == {
        "stream-hi": trace_content_sha256(ensure_sample_trace("stream-hi")),
        "chase-lo": trace_content_sha256(ensure_sample_trace("chase-lo")),
    }
    assert manifest["decoder"] == "dramsim2"
    assert manifest["env"]["REPRO_TRACE_DIR"] == "/tmp/t"
    untraced = spec_from_dict(
        spec_dict(mixes=[["mcf", "libquantum", "omnetpp", "hmmer"]])
    )
    assert "trace_files" not in build_manifest(untraced, environ={})


def test_example_traces_spec_loads():
    spec = load_spec("examples/campaign_traces.toml")
    assert spec.trace_hashes()
    assert len(spec.expand()) == 4


# -- campaign run/resume ------------------------------------------------------
def test_campaign_resumes_traced_jobs_across_rename(tmp_path):
    from repro.campaign.orchestrator import run_campaign
    from repro.campaign.store import ResultStore

    sample = ensure_sample_trace("stream-hi")
    first = tmp_path / "first.gz"
    shutil.copy(sample, first)
    db = tmp_path / "store.db"

    def run(path):
        spec = spec_from_dict(
            spec_dict(
                mixes=[["trace:app", "trace:chase-lo", "mcf", "libquantum"]],
                trace_files={"app": str(path)},
            )
        )
        with ResultStore(db) as store:
            return run_campaign(spec, store)

    stats = run(first)
    assert stats.ran == 1 and stats.failed == 0
    # Rename the file: content identity keeps every stored job.
    renamed = tmp_path / "renamed.gz"
    first.rename(renamed)
    stats = run(renamed)
    assert stats.ran == 0 and stats.skipped == 1


# -- CLI ----------------------------------------------------------------------
def test_cli_trace_info_and_decode(capsys, tmp_path):
    path = ensure_sample_trace("stream-hi")
    assert main(["trace", "info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "format=k6" in out and "sha256=" in out
    assert main(["trace", "decode", str(path), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "decoder: row=14,rank=1,bank=3,column=4" in out
    assert out.count("cycle=") == 2


def test_cli_trace_gen(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
    assert main(["trace", "gen", "stream-lo"]) == 0
    assert "stream-lo" in capsys.readouterr().out
    assert main(["trace", "gen", "bogus"]) == 2
    assert "unknown sample trace" in capsys.readouterr().err


def test_cli_trace_run_mix_typo_exits_cleanly(capsys):
    assert main(["trace", "run", "--mix", "tmxi1"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "tmix1" in err


def test_cli_trace_run_argument_validation(capsys):
    assert main(["trace", "run"]) == 2
    assert "nothing to run" in capsys.readouterr().err
    assert main(["trace", "run", "--mix", "tmix1", "mcf"]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["trace", "run", "--trace-file", "nopath", "mcf", "mcf"]) == 2
    assert "ALIAS=PATH" in capsys.readouterr().err


def test_cli_trace_run_traced_workload(capsys):
    assert (
        main(
            [
                "--instructions",
                str(INSTR),
                "trace",
                "run",
                "trace:stream-hi",
                "mcf",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace:stream-hi" in out
    assert "trace[reqs=" in out
