"""Unit tests for the FCFS and FR-FCFS baseline schedulers."""

from repro.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.events import EventQueue
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.frfcfs import FrFcfsScheduler


def setup_controller(scheduler):
    queue = EventQueue()
    controller = MemoryController(queue, DramConfig(), scheduler, 4)
    return queue, controller


def req(thread=0, bank=0, row=0, arrival=0):
    r = MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)
    r.arrival_time = arrival
    return r


def test_fcfs_picks_oldest():
    _, controller = setup_controller(FcfsScheduler())
    a = req(row=1, arrival=10)
    b = req(row=2, arrival=5)
    assert controller.scheduler.select([a, b], (0, 0), 20) is b


def test_fcfs_ignores_row_hits():
    queue, controller = setup_controller(FcfsScheduler())
    bank = controller.channels[0].banks[0]
    bank.open_row = 7
    older_conflict = req(row=1, arrival=0)
    younger_hit = req(row=7, arrival=5)
    assert controller.scheduler.select([younger_hit, older_conflict], (0, 0), 10) is older_conflict


def test_fcfs_breaks_ties_by_request_id():
    _, controller = setup_controller(FcfsScheduler())
    a = req(row=1, arrival=0)
    b = req(row=2, arrival=0)
    chosen = controller.scheduler.select([b, a], (0, 0), 0)
    assert chosen is min((a, b), key=lambda r: r.request_id)


def test_frfcfs_prefers_row_hit_over_older():
    queue, controller = setup_controller(FrFcfsScheduler())
    bank = controller.channels[0].banks[0]
    bank.open_row = 7
    older_conflict = req(row=1, arrival=0)
    younger_hit = req(row=7, arrival=5)
    assert controller.scheduler.select([older_conflict, younger_hit], (0, 0), 10) is younger_hit


def test_frfcfs_falls_back_to_age_without_hits():
    _, controller = setup_controller(FrFcfsScheduler())
    a = req(row=1, arrival=3)
    b = req(row=2, arrival=1)
    assert controller.scheduler.select([a, b], (0, 0), 10) is b


def test_frfcfs_oldest_hit_wins_among_hits():
    queue, controller = setup_controller(FrFcfsScheduler())
    controller.channels[0].banks[0].open_row = 7
    hit_old = req(row=7, arrival=1)
    hit_new = req(row=7, arrival=9)
    assert controller.scheduler.select([hit_new, hit_old], (0, 0), 10) is hit_old


def test_frfcfs_closed_row_means_no_hits():
    _, controller = setup_controller(FrFcfsScheduler())
    a = req(row=1, arrival=2)
    b = req(row=2, arrival=4)
    assert controller.scheduler.select([b, a], (0, 0), 10) is a


def test_scheduler_repr_shows_name():
    assert "FR-FCFS" in repr(FrFcfsScheduler())
    assert "FCFS" in repr(FcfsScheduler())
