"""Edge-case tests for the analytical core model."""

import pytest

from repro.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceEntry
from repro.events import EventQueue


class Port:
    def __init__(self, queue, latency=100):
        self.queue = queue
        self.latency = latency
        self.issues = []

    def access(self, thread_id, address, is_write, on_complete):
        self.issues.append((self.queue.now, address, is_write))
        if on_complete is not None:
            self.queue.schedule_in(self.latency, on_complete)


def run(entries, repeat=False, latency=100, config=None):
    queue = EventQueue()
    port = Port(queue, latency)
    core = Core(0, Trace(entries), queue, port, config or CoreConfig(), repeat=repeat)
    core.start()
    queue.run(max_events=500_000)
    return core, port, queue


def test_empty_trace_finishes_immediately():
    core, _, _ = run([])
    assert core.finished is True
    assert core.snapshot.instructions == 0


def test_repeat_restarts_the_trace():
    entries = [TraceEntry(5, i * 64) for i in range(3)]
    queue = EventQueue()
    port = Port(queue)
    core = Core(0, Trace(entries), queue, port, CoreConfig(), repeat=True)
    core.start()
    # Run long enough for several passes.
    queue.run(until=5_000)
    assert core.loads_issued > 3  # kept generating after the first pass
    assert core.snapshot.loads == 3  # snapshot frozen at first completion


def test_dependent_write_parked_until_parent():
    entries = [
        TraceEntry(0, 0),
        TraceEntry(0, 64, is_write=True, depends_on=0),
    ]
    core, port, _ = run(entries)
    write_issue = next(t for t, _a, w in port.issues if w)
    read_issue = next(t for t, _a, w in port.issues if not w)
    assert write_issue >= read_issue + 100


def test_dependency_on_completed_parent_is_immediate():
    # Parent at index 0 completes long before the child dispatches.
    entries = [TraceEntry(0, 0), TraceEntry(3000, 64, depends_on=0)]
    core, port, _ = run(entries)
    issue_gap = port.issues[1][0] - port.issues[0][0]
    # The child issues when dispatched (~1000 cycles later), not 100+1000.
    assert issue_gap >= 1000
    assert core.snapshot.loads == 2


def test_dependency_chain_across_walkers_is_independent():
    # Two interleaved chains: A0 <- A1, B0 <- B1; A and B independent.
    entries = [
        TraceEntry(0, 0),  # A0
        TraceEntry(0, 1 << 20),  # B0
        TraceEntry(0, 64, depends_on=0),  # A1
        TraceEntry(0, (1 << 20) + 64, depends_on=1),  # B1
    ]
    core, port, _ = run(entries)
    a1 = next(t for t, a, _ in port.issues if a == 64)
    b1 = next(t for t, a, _ in port.issues if a == (1 << 20) + 64)
    # Both chains progressed in parallel: second links issue close together.
    assert abs(a1 - b1) < 50


def test_snapshot_cycles_monotonic_with_latency():
    entries = [TraceEntry(10, i * 64, depends_on=(i - 1 if i else None)) for i in range(10)]
    fast, _, _ = run(entries, latency=50)
    slow, _, _ = run(entries, latency=500)
    assert slow.snapshot.cycles > fast.snapshot.cycles
    assert slow.snapshot.stall_cycles > fast.snapshot.stall_cycles


def test_width_one_core_is_slower():
    entries = [TraceEntry(299, 0)]
    wide, _, _ = run(entries, latency=0, config=CoreConfig(width=3))
    narrow, _, _ = run(entries, latency=0, config=CoreConfig(width=1))
    assert narrow.snapshot.cycles > wide.snapshot.cycles


def test_gap_zero_back_to_back_loads():
    entries = [TraceEntry(0, i * 64) for i in range(6)]
    core, port, _ = run(entries)
    assert core.snapshot.loads == 6
    # All independent and window-fitting: issued in one burst.
    assert max(t for t, _, _ in port.issues) < 100


def test_instructions_accounting_with_repeat():
    entries = [TraceEntry(9, 0)]
    queue = EventQueue()
    port = Port(queue)
    core = Core(0, Trace(entries), queue, port, CoreConfig(), repeat=True)
    core.start()
    queue.run(until=10_000)
    # Each pass is 10 instructions; retired counts passes cumulatively.
    assert core.instructions_retired >= 20
    assert core.instructions_retired % 1 == 0
