"""Unit tests for the STFM (stall-time fair) scheduler."""

import pytest

from repro.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.events import EventQueue
from repro.schedulers.stfm import StfmScheduler


def setup_stfm(num_threads=4, **kwargs):
    queue = EventQueue()
    scheduler = StfmScheduler(num_threads, **kwargs)
    controller = MemoryController(queue, DramConfig(), scheduler, num_threads)
    return queue, controller, scheduler


def req(thread=0, bank=0, row=0, arrival=0):
    r = MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)
    r.arrival_time = arrival
    return r


def test_alpha_below_one_rejected():
    with pytest.raises(ValueError):
        StfmScheduler(4, alpha=0.9)


def test_initial_slowdowns_are_one():
    _, _, s = setup_stfm()
    assert s.slowdown(0) == pytest.approx(1.0)


def test_t_shared_accumulates_while_outstanding():
    _, _, s = setup_stfm()
    r = req(thread=0)
    s.on_enqueue(r, now=0)
    s.on_complete(r, now=100)
    assert s._t_shared[0] == pytest.approx(100.0)


def test_t_shared_not_accumulated_while_idle():
    _, _, s = setup_stfm()
    r1 = req(thread=0)
    s.on_enqueue(r1, now=0)
    s.on_complete(r1, now=100)
    r2 = req(thread=0)
    s.on_enqueue(r2, now=500)  # 400 idle cycles must not count
    s.on_complete(r2, now=600)
    assert s._t_shared[0] == pytest.approx(200.0)


def test_interference_raises_slowdown():
    _, _, s = setup_stfm()
    r = req(thread=0)
    s.on_enqueue(r, now=0)
    s._t_interference[0] = 50.0
    s.on_complete(r, now=100)
    assert s.slowdown(0) == pytest.approx(2.0)


def test_weight_scales_perceived_slowdown():
    _, _, s = setup_stfm(weights={0: 4.0})
    r = req(thread=0)
    s.on_enqueue(r, now=0)
    s._t_interference[0] = 50.0
    s.on_complete(r, now=100)
    assert s.slowdown(0) == pytest.approx(1.0 + 1.0 * 4.0)


def test_fair_mode_uses_frfcfs():
    queue, controller, s = setup_stfm()
    controller.channels[0].banks[0].open_row = 7
    hit = req(thread=0, row=7, arrival=9)
    old = req(thread=1, row=2, arrival=0)
    # No interference recorded: unfairness 1 <= alpha -> FR-FCFS rules.
    assert s.select([old, hit], (0, 0), now=10) is hit


def test_unfair_mode_prioritizes_slowest_thread():
    queue, controller, s = setup_stfm(alpha=1.1)
    controller.channels[0].banks[0].open_row = 7
    # Thread 1 is heavily slowed; thread 0 is not.
    for tid, interference in ((0, 0.0), (1, 900.0)):
        r = req(thread=tid)
        s.on_enqueue(r, now=0)
        s._t_interference[tid] = interference
        s.on_complete(r, now=1000)
    hit = req(thread=0, row=7, arrival=9)
    slow = req(thread=1, row=2, arrival=10)
    assert s.select([hit, slow], (0, 0), now=1100) is slow


def test_on_issue_charges_waiting_victims():
    queue, controller, s = setup_stfm()
    aggressor = req(thread=0, bank=0, row=1)
    controller.enqueue(aggressor)  # older: serviced first
    victim = req(thread=1, bank=0, row=2)
    controller.enqueue(victim)  # waits behind the aggressor's access
    queue.run()
    assert s._t_interference[1] > 0.0
    assert s._t_interference[0] == 0.0


def test_bank_parallelism_divides_interference():
    _, _, s = setup_stfm()
    # Thread 1 busy in 4 banks -> divisor 4.
    for bank in range(4):
        s.on_enqueue(req(thread=1, bank=bank), now=0)
    assert s._bank_parallelism(1) == 4


def test_interval_decay_halves_counters():
    _, _, s = setup_stfm(interval_length=1000)
    r = req(thread=0)
    s.on_enqueue(r, now=0)
    s._t_interference[0] = 80.0
    s.on_complete(r, now=100)
    shared_before = s._t_shared[0]
    late = req(thread=0)
    s.on_enqueue(late, now=2000)  # crosses the interval boundary
    assert s._t_shared[0] == pytest.approx(shared_before / 2)
    assert s._t_interference[0] == pytest.approx(40.0)


def test_end_to_end_completes_all():
    queue, controller, s = setup_stfm()
    done = []
    for i in range(16):
        r = req(thread=i % 4, bank=i % 8, row=i)
        r.on_complete = lambda _r: done.append(1)
        controller.enqueue(r)
    queue.run()
    assert len(done) == 16
