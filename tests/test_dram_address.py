"""Unit and property tests for the address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import CACHE_LINE_BYTES, AddressMapping


def test_columns_per_row():
    assert AddressMapping(row_bytes=2048).columns_per_row == 32


def test_same_row_addresses_map_to_same_bank_and_row():
    m = AddressMapping()
    a = m.map(0)
    b = m.map(CACHE_LINE_BYTES)  # next line, same row
    assert (a.channel, a.bank, a.row) == (b.channel, b.bank, b.row)
    assert b.column == a.column + 1


def test_sequential_rows_change_bank_with_xor_hash():
    m = AddressMapping(xor_bank_hash=True)
    row_bytes = m.row_bytes
    banks = {m.map(i * row_bytes).bank for i in range(8)}
    assert len(banks) > 1  # a long stream spreads across banks


def test_compose_map_roundtrip_simple():
    m = AddressMapping(num_channels=2, num_banks=8)
    address = m.compose(channel=1, bank=3, row=77, column=5)
    coords = m.map(address)
    assert coords.channel == 1
    assert coords.bank == 3
    assert coords.row == 77
    assert coords.column == 5


def test_compose_respects_xor_disabled():
    m = AddressMapping(xor_bank_hash=False)
    coords = m.map(m.compose(0, 6, 1234, 7))
    assert coords.bank == 6
    assert coords.row == 1234


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        AddressMapping().map(-1)


def test_compose_validates_ranges():
    m = AddressMapping(num_channels=1, num_banks=8)
    with pytest.raises(ValueError):
        m.compose(1, 0, 0, 0)  # channel out of range
    with pytest.raises(ValueError):
        m.compose(0, 8, 0, 0)  # bank out of range
    with pytest.raises(ValueError):
        m.compose(0, 0, -1, 0)
    with pytest.raises(ValueError):
        m.compose(0, 0, 0, 32)  # column out of range for 2 KB rows


def test_non_power_of_two_banks_rejected():
    with pytest.raises(ValueError):
        AddressMapping(num_banks=6)


def test_row_bytes_must_be_line_multiple():
    with pytest.raises(ValueError):
        AddressMapping(row_bytes=1000)


@given(
    channel=st.integers(0, 1),
    bank=st.integers(0, 7),
    row=st.integers(0, 10_000),
    column=st.integers(0, 31),
)
@settings(max_examples=200)
def test_compose_map_roundtrip_property(channel, bank, row, column):
    m = AddressMapping(num_channels=2, num_banks=8)
    coords = m.map(m.compose(channel, bank, row, column))
    assert (coords.channel, coords.bank, coords.row, coords.column) == (
        channel,
        bank,
        row,
        column,
    )


@given(line=st.integers(0, 1 << 30))
@settings(max_examples=200)
def test_map_compose_roundtrip_property(line):
    m = AddressMapping(num_channels=2, num_banks=8)
    address = line * CACHE_LINE_BYTES
    c = m.map(address)
    assert m.compose(c.channel, c.bank, c.row, c.column) == address


@given(line=st.integers(0, 1 << 24))
@settings(max_examples=100)
def test_distinct_lines_map_to_distinct_coordinates(line):
    m = AddressMapping()
    a = m.map(line * CACHE_LINE_BYTES)
    b = m.map((line + 1) * CACHE_LINE_BYTES)
    assert (a.channel, a.bank, a.row, a.column) != (
        b.channel,
        b.bank,
        b.row,
        b.column,
    )
