"""Unit tests for the DRAM bank model."""

import pytest

from repro.dram.bank import Bank
from repro.dram.bus import DataBus
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import ddr2_800


def make_request(row=0, bank=0, write=False):
    return MemoryRequest(
        thread_id=0,
        address=0,
        channel=0,
        bank=bank,
        row=row,
        type=RequestType.WRITE if write else RequestType.READ,
    )


@pytest.fixture
def timing():
    return ddr2_800()


@pytest.fixture
def bank(timing):
    return Bank(timing)


@pytest.fixture
def bus(timing):
    return DataBus(timing)


def test_initial_state_is_closed(bank):
    assert bank.open_row is None
    assert bank.row_state(5) == "closed"


def test_first_access_is_row_closed_latency(bank, bus, timing):
    outcome = bank.service(make_request(row=5), now=0, bus=bus)
    assert outcome.row_result == "closed"
    assert outcome.completion == timing.tRCD + timing.tCL + timing.tBUS


def test_row_hit_after_open(bank, bus, timing):
    bank.service(make_request(row=5), now=0, bus=bus)
    start = bank.busy_until
    outcome = bank.service(make_request(row=5), now=start, bus=bus)
    assert outcome.row_result == "hit"
    assert outcome.completion - outcome.start == timing.tCL + timing.tBUS


def test_row_conflict_pays_precharge(bank, bus, timing):
    bank.service(make_request(row=5), now=0, bus=bus)
    start = max(bank.busy_until, bank._activate_time + timing.tRAS)
    outcome = bank.service(make_request(row=9), now=start, bus=bus)
    assert outcome.row_result == "conflict"
    assert (
        outcome.completion - outcome.start
        == timing.tRP + timing.tRCD + timing.tCL + timing.tBUS
    )


def test_conflict_waits_for_tras(bank, bus, timing):
    # Precharge may not occur before the open row has been open tRAS cycles.
    bank.service(make_request(row=5), now=0, bus=bus)
    outcome = bank.service(make_request(row=9), now=bank.busy_until, bus=bus)
    activate_time = timing.tRCD  # first ACT completed at tRCD, issued at 0
    assert outcome.completion >= activate_time - timing.tRCD + timing.tRAS + timing.tRP


def test_open_row_updated_after_access(bank, bus):
    bank.service(make_request(row=5), now=0, bus=bus)
    assert bank.open_row == 5
    assert bank.row_state(5) == "hit"
    assert bank.row_state(6) == "conflict"


def test_busy_bank_delays_next_access(bank, bus):
    first = bank.service(make_request(row=5), now=0, bus=bus)
    second = bank.service(make_request(row=5), now=0, bus=bus)
    assert second.start >= first.completion


def test_earliest_start_respects_busy(bank, bus):
    bank.service(make_request(row=1), now=0, bus=bus)
    assert bank.earliest_start(0) == bank.busy_until
    assert bank.earliest_start(bank.busy_until + 10) == bank.busy_until + 10


def test_write_sets_write_recovery(bank, bus, timing):
    outcome = bank.service(make_request(row=5, write=True), now=0, bus=bus)
    assert bank._write_recovery_until == outcome.completion + timing.tWR
    # A conflict after the write must wait out tWR before precharging.
    conflict = bank.service(make_request(row=9), now=outcome.completion, bus=bus)
    assert conflict.completion >= outcome.completion + timing.tWR + timing.tRP


def test_stats_track_hits_and_conflicts(bank, bus):
    bank.service(make_request(row=1), now=0, bus=bus)
    bank.service(make_request(row=1), now=bank.busy_until, bus=bus)
    bank.service(make_request(row=2), now=bank.busy_until + 10_000, bus=bus)
    assert bank.accesses == 3
    assert bank.row_hits == 1
    assert bank.row_conflicts == 1
    assert bank.row_hit_rate == pytest.approx(1 / 3)


def test_row_hit_rate_zero_without_accesses(bank):
    assert bank.row_hit_rate == 0.0


def test_data_start_waits_for_bus(bank, timing):
    bus = DataBus(timing)
    bus.reserve(300)  # another bank's burst occupies the bus until 340
    outcome = bank.service(make_request(row=5), now=0, bus=bus)
    # CAS data is ready at tRCD+tCL=120 but the bus is busy until 340.
    assert outcome.data_start == 300 + timing.tBUS
    assert outcome.completion == outcome.data_start + timing.tBUS
