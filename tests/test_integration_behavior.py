"""Qualitative integration tests: paper-level behavioural invariants.

These run small simulations and assert the *shape* of the paper's claims,
not exact magnitudes (trace sizes here are tiny for test speed).
"""

import pytest

from repro.config import baseline_system
from repro.core.batcher import OPPORTUNISTIC
from repro.sim.runner import ExperimentRunner

INSTRUCTIONS = 90_000


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=INSTRUCTIONS, seed=0)


@pytest.fixture(scope="module")
def identical_lbm(runner):
    return {
        name: runner.run_workload(["lbm"] * 4, name)
        for name in ("FR-FCFS", "NFQ", "PAR-BS")
    }


def test_identical_threads_are_treated_fairly(identical_lbm):
    # Case Study III: four identical copies -> unfairness near 1 everywhere.
    for name, result in identical_lbm.items():
        assert result.unfairness < 1.4, name


def test_parbs_beats_nfq_on_identical_high_blp_threads(identical_lbm):
    # NFQ's deadline balancing destroys row locality (paper Fig. 7).
    assert (
        identical_lbm["PAR-BS"].weighted_speedup
        > identical_lbm["NFQ"].weighted_speedup
    )


def test_nfq_destroys_row_locality_of_identical_streams(identical_lbm):
    def hit_rate(result):
        return sum(t.row_hit_rate for t in result.threads) / len(result.threads)

    assert hit_rate(identical_lbm["NFQ"]) < hit_rate(identical_lbm["FR-FCFS"])


@pytest.fixture(scope="module")
def cs1(runner):
    workload = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
    return {
        name: runner.run_workload(workload, name)
        for name in ("FR-FCFS", "NFQ", "STFM", "PAR-BS")
    }


def test_frfcfs_favors_the_streaming_thread(cs1):
    # Under FR-FCFS the high-row-locality intensive thread (libquantum) is
    # slowed least (paper Fig. 5).
    slowdowns = cs1["FR-FCFS"].slowdowns()
    two_least = sorted(slowdowns, key=slowdowns.get)[:2]
    assert 0 in two_least


def test_parbs_preserves_mcf_bank_parallelism_best(cs1):
    # mcf (highest BLP) is hurt least by PAR-BS among the QoS schedulers
    # (paper Figs. 5 and 9).
    mcf = 1
    assert cs1["PAR-BS"].slowdowns()[mcf] <= cs1["STFM"].slowdowns()[mcf] + 0.05
    assert cs1["PAR-BS"].slowdowns()[mcf] <= cs1["NFQ"].slowdowns()[mcf] + 0.05


def test_parbs_keeps_mcf_blp_higher_than_nfq(cs1):
    mcf = 1
    parbs_blp = cs1["PAR-BS"].threads[mcf].blp_shared
    nfq_blp = cs1["NFQ"].threads[mcf].blp_shared
    assert parbs_blp > 0.9 * nfq_blp


def test_qos_schedulers_fairer_than_frfcfs(cs1):
    assert cs1["PAR-BS"].unfairness < 1.15 * cs1["FR-FCFS"].unfairness
    assert cs1["STFM"].unfairness < 1.15 * cs1["FR-FCFS"].unfairness


def test_batching_bounds_worst_case_latency(runner):
    # Table 4: PAR-BS's worst-case request latency is far below NFQ/STFM's.
    workload = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
    parbs = runner.run_workload(workload, "PAR-BS")
    nfq = runner.run_workload(workload, "NFQ")
    assert parbs.worst_case_latency < 1.5 * nfq.worst_case_latency


def test_priorities_are_respected(runner):
    result = runner.run_workload(
        ["lbm"] * 4, "PAR-BS", priorities={0: 1, 1: 1, 2: 2, 3: 8}
    )
    slowdowns = [t.memory_slowdown for t in result.threads]
    assert slowdowns[0] < slowdowns[2] < slowdowns[3]
    assert slowdowns[1] < slowdowns[2]


def test_opportunistic_thread_yields_to_critical(runner):
    result = runner.run_workload(
        ["libquantum", "milc", "omnetpp", "astar"],
        "PAR-BS",
        priorities={0: OPPORTUNISTIC, 1: OPPORTUNISTIC, 2: 1, 3: OPPORTUNISTIC},
    )
    slowdowns = result.slowdowns()
    assert slowdowns[2] < 1.5  # the critical thread runs nearly alone
    assert all(slowdowns[t] > slowdowns[2] for t in (0, 1, 3))


def test_marking_cap_one_hurts_streaming_threads(runner):
    workload = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
    tight = runner.run_workload(workload, "PAR-BS", marking_cap=1)
    loose = runner.run_workload(workload, "PAR-BS", marking_cap=5)
    # Cap 1 interleaves row streaks -> the streaming thread slows more
    # (paper Fig. 11, libquantum).
    assert tight.slowdowns()[0] > loose.slowdowns()[0]


def test_eight_core_system_runs(runner):
    from repro.workloads.mixes import EIGHT_CORE_MIX

    runner8 = ExperimentRunner(baseline_system(8), instructions=INSTRUCTIONS)
    result = runner8.run_workload(EIGHT_CORE_MIX, "PAR-BS")
    assert len(result.threads) == 8
    assert result.unfairness >= 1.0


def test_ranking_ablation_direction(runner):
    # Parallelism-aware ranking should not lose to rank-free batching on
    # throughput for high-BLP threads (paper Fig. 13, 4x lbm).
    par = runner.run_workload(["lbm"] * 4, "PAR-BS")
    norank = runner.run_workload(["lbm"] * 4, "PAR-BS", within_batch="frfcfs")
    assert par.hmean_speedup >= 0.95 * norank.hmean_speedup
