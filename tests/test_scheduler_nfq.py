"""Unit tests for the NFQ (fair queueing) scheduler."""

import pytest

from repro.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.events import EventQueue
from repro.schedulers.nfq import NfqScheduler


def setup_nfq(num_threads=4, weights=None, threshold=None):
    queue = EventQueue()
    scheduler = NfqScheduler(num_threads, weights=weights, inversion_threshold=threshold)
    controller = MemoryController(queue, DramConfig(), scheduler, num_threads)
    return queue, controller, scheduler


def req(thread=0, bank=0, row=0):
    return MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)


def test_equal_shares_by_default():
    _, _, s = setup_nfq(4)
    assert s._share(0) == pytest.approx(0.25)


def test_weighted_shares():
    _, _, s = setup_nfq(2, weights={0: 3.0, 1: 1.0})
    assert s._share(0) == pytest.approx(0.75)
    assert s._share(1) == pytest.approx(0.25)


def test_virtual_finish_advances_per_thread_bank():
    queue, controller, s = setup_nfq()
    a, b = req(thread=0, bank=0, row=1), req(thread=0, bank=0, row=1)
    s.on_enqueue(a, now=0)
    s.on_enqueue(b, now=0)
    assert b.virtual_finish > a.virtual_finish


def test_virtual_finish_independent_across_banks():
    _, _, s = setup_nfq()
    a, b = req(thread=0, bank=0, row=1), req(thread=0, bank=1, row=1)
    s.on_enqueue(a, now=0)
    s.on_enqueue(b, now=0)
    assert a.virtual_finish == pytest.approx(b.virtual_finish)


def test_row_hit_cost_is_cheaper():
    _, controller, s = setup_nfq()
    t = controller.timing
    first = req(thread=0, bank=0, row=1)
    hit = req(thread=0, bank=0, row=1)
    s.on_enqueue(first, now=0)
    s.on_enqueue(hit, now=0)
    hit_cost = hit.virtual_finish - first.virtual_finish
    assert hit_cost == pytest.approx(4 * (t.row_hit_latency + t.tBUS))


def test_idle_thread_gets_fresh_deadline():
    _, _, s = setup_nfq()
    backlogged = [req(thread=0, bank=0, row=i) for i in range(5)]
    for r in backlogged:
        s.on_enqueue(r, now=0)
    bursty = req(thread=1, bank=0, row=9)
    s.on_enqueue(bursty, now=0)
    # The idle thread's single request has an earlier deadline than the
    # backlogged thread's tail — the "idleness problem".
    assert bursty.virtual_finish < backlogged[-1].virtual_finish


def test_select_earliest_virtual_finish():
    _, controller, s = setup_nfq()
    a = req(thread=0, bank=0, row=1)
    b = req(thread=1, bank=0, row=2)
    s.on_enqueue(a, now=0)
    s.on_enqueue(b, now=0)
    a.virtual_finish, b.virtual_finish = 100.0, 50.0
    assert s.select([a, b], (0, 0), now=0) is b


def test_row_hit_priority_inversion_within_threshold():
    _, controller, s = setup_nfq(threshold=1000)
    bank = controller.channels[0].banks[0]
    bank.open_row = 7
    s._row_open_row[(0, 0)] = 7
    s._row_open_since[(0, 0)] = 0
    hit = req(thread=0, bank=0, row=7)
    other = req(thread=1, bank=0, row=2)
    hit.virtual_finish, other.virtual_finish = 500.0, 10.0
    # Within the threshold the row hit wins despite a later deadline.
    assert s.select([hit, other], (0, 0), now=100) is hit


def test_row_hit_inversion_expires_after_threshold():
    _, controller, s = setup_nfq(threshold=1000)
    bank = controller.channels[0].banks[0]
    bank.open_row = 7
    s._row_open_row[(0, 0)] = 7
    s._row_open_since[(0, 0)] = 0
    hit = req(thread=0, bank=0, row=7)
    other = req(thread=1, bank=0, row=2)
    hit.virtual_finish, other.virtual_finish = 500.0, 10.0
    assert s.select([hit, other], (0, 0), now=2000) is other


def test_on_issue_tracks_row_open_time():
    queue, controller, s = setup_nfq()
    r = req(thread=0, bank=0, row=7)
    s.on_issue(r, now=123)
    assert s._row_open_since[(0, 0)] == 123
    # Servicing the same row again does not reset the open timestamp.
    s.on_issue(req(thread=1, bank=0, row=7), now=200)
    assert s._row_open_since[(0, 0)] == 123


def test_end_to_end_all_requests_complete():
    queue, controller, s = setup_nfq()
    done = []
    for i in range(12):
        r = req(thread=i % 4, bank=i % 8, row=i)
        r.on_complete = lambda _r: done.append(1)
        controller.enqueue(r)
    queue.run()
    assert len(done) == 12
