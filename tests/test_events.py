"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.events import EventQueue, SimulationError


def test_starts_at_time_zero():
    assert EventQueue().now == 0


def test_runs_single_event_at_scheduled_time():
    q = EventQueue()
    seen = []
    q.schedule(10, lambda: seen.append(q.now))
    q.run()
    assert seen == [10]
    assert q.now == 10


def test_events_run_in_time_order():
    q = EventQueue()
    seen = []
    for t in (30, 10, 20):
        q.schedule(t, lambda t=t: seen.append(t))
    q.run()
    assert seen == [10, 20, 30]


def test_equal_time_events_run_in_fifo_order():
    q = EventQueue()
    seen = []
    for i in range(5):
        q.schedule(7, lambda i=i: seen.append(i))
    q.run()
    assert seen == [0, 1, 2, 3, 4]


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    seen = []
    q.schedule(5, lambda: seen.append("low"), priority=2)
    q.schedule(5, lambda: seen.append("high"), priority=0)
    q.run()
    assert seen == ["high", "low"]


def test_schedule_in_is_relative_to_now():
    q = EventQueue()
    seen = []
    q.schedule(10, lambda: q.schedule_in(5, lambda: seen.append(q.now)))
    q.run()
    assert seen == [15]


def test_scheduling_in_the_past_raises():
    q = EventQueue()
    q.schedule(10, lambda: None)
    q.run()
    with pytest.raises(SimulationError):
        q.schedule(5, lambda: None)


def test_step_returns_false_when_empty():
    assert EventQueue().step() is False


def test_step_returns_true_and_advances():
    q = EventQueue()
    q.schedule(3, lambda: None)
    assert q.step() is True
    assert q.now == 3


def test_run_until_stops_before_later_events():
    q = EventQueue()
    seen = []
    q.schedule(10, lambda: seen.append(10))
    q.schedule(100, lambda: seen.append(100))
    q.run(until=50)
    assert seen == [10]
    assert q.now == 50  # clock advances to the until bound
    q.run()
    assert seen == [10, 100]


def test_run_max_events_limit():
    q = EventQueue()
    seen = []
    for t in range(5):
        q.schedule(t + 1, lambda t=t: seen.append(t))
    ran = q.run(max_events=2)
    assert ran == 2
    assert len(seen) == 2


def test_run_returns_event_count():
    q = EventQueue()
    for t in range(4):
        q.schedule(t, lambda: None)
    assert q.run() == 4


def test_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    q.schedule(42, lambda: None)
    assert q.peek_time() == 42


def test_len_counts_pending_events():
    q = EventQueue()
    q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    q.step()
    assert len(q) == 1


def test_events_may_schedule_same_time_events():
    q = EventQueue()
    seen = []
    q.schedule(5, lambda: q.schedule(5, lambda: seen.append("nested")))
    q.run()
    assert seen == ["nested"]
    assert q.now == 5


def test_deterministic_across_instances():
    def build():
        q = EventQueue()
        order = []
        for i, t in enumerate([4, 4, 2, 9, 2]):
            q.schedule(t, lambda i=i: order.append(i))
        q.run()
        return order

    assert build() == build()
