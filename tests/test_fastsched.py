"""Fuzz and golden tests for the packed-key arbitration kernel.

:class:`~repro.dram.fastsched.FastBankSched` replaces
:class:`~repro.dram.rqindex.BankReadIndex` on the fast backend.  The two
structures must agree *op for op* — same membership, same ``peek`` /
``peek_row`` winners after any interleaving of inserts, removals and
epoch bumps — because the controller consults whichever one is installed
to make issue decisions, and the backends must produce the same command
stream.  Two layers pin this:

- a randomized differential fuzz that drives both structures through
  hundreds of mixed enqueue/complete/epoch-bump operations per policy,
  checking every observable after every op (this is what exercises the
  stale-key-array corners: pushes skipped after a bump, removals against
  stale parallel arrays, minima rebuilds);
- golden command-stream equivalence over full simulations — every
  scheduler x {4, 8} cores x 2 seeds through the ``test_fastsim``
  harness, comparing the issued DRAM command log entry by entry.
"""

from __future__ import annotations

import random

import pytest

from repro.config import baseline_system
from repro.dram.fastctl import FastMemoryController
from repro.dram.fastsched import FastBankSched
from repro.dram.request import MemoryRequest
from repro.dram.rqindex import BankReadIndex
from repro.events import EventQueue
from repro.sim.factory import SCHEDULER_NAMES, make_scheduler

from tests.test_fastsim import _run

NUM_THREADS = 4
ROWS = 4
FUZZ_OPS = 600


def _attached_scheduler(name: str):
    """A scheduler attached to a real controller (NFQ/STFM need the bank
    geometry and timing model resolved before they stamp or key requests)."""
    config = baseline_system(NUM_THREADS)
    controller = FastMemoryController(
        EventQueue(), config.dram, make_scheduler(name, NUM_THREADS),
        num_threads=NUM_THREADS,
    )
    return controller.scheduler


def _twin_requests(rng: random.Random, now: int) -> tuple[MemoryRequest, MemoryRequest]:
    """Two distinct request objects with identical field values (including a
    shared ``request_id``) — one per structure, so the structures' private
    ``buf_pos`` bookkeeping never aliases."""
    fields = dict(
        thread_id=rng.randrange(NUM_THREADS),
        address=rng.randrange(1 << 20) * 64,
        channel=0,
        bank=0,
        row=rng.randrange(ROWS),
        arrival_time=now,
    )
    a = MemoryRequest(**fields)
    b = MemoryRequest(**fields)
    b.request_id = a.request_id
    return a, b


def _mutate_priority_state(scheduler, rng: random.Random, live, now: int) -> None:
    """Change the global priority state the way the policy would, then bump
    the epoch — the protocol under test is that key arrays built for the old
    epoch are lazily rebuilt, never consulted stale."""
    name = scheduler.name
    if name == "PAR-BS":
        # Batch boundary: marking status and the rank table change together.
        for ra, rb in live:
            if rng.random() < 0.4:
                ra.marked = not ra.marked
                rb.marked = ra.marked
        ranks = list(range(NUM_THREADS))
        rng.shuffle(ranks)
        scheduler._rank_by_tid = ranks
    elif name == "STFM":
        # Fairness-mode flip: fair on/off and which thread is slowest.
        fair = rng.random() < 0.5
        scheduler._index_mode = (fair, rng.randrange(NUM_THREADS) if fair else -1)
        scheduler.index_prefix_len = 1 if fair else 0
        scheduler.pack_prefix_shift = 40 if fair else None
    scheduler.bump_index_epoch(now)


def _assert_observables_equal(ref: BankReadIndex, fast: FastBankSched, scheduler):
    # Membership is exact on both sides at all times.
    assert fast.size == ref.size
    assert fast.thread_counts == ref.thread_counts
    assert sorted(r.request_id for r in fast.requests()) == sorted(
        r.request_id for r in ref.requests()
    )
    # Arbitration observables, after the same lazy revalidation the
    # controller performs.
    ref.ensure(scheduler)
    fast.ensure(scheduler)
    ref_best = ref.peek()
    fast_best = fast.peek()
    if ref_best is None:
        assert fast_best is None
        return
    assert fast_best is not None
    assert fast_best[1].request_id == ref_best[1].request_id
    for row in list(ref.rows):
        ref_row = ref.peek_row(row)
        fast_row = fast.peek_row(row)
        assert ref_row is not None and fast_row is not None
        assert fast_row[1].request_id == ref_row[1].request_id


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("scheduler_name", SCHEDULER_NAMES)
def test_kernel_fuzz_matches_rqindex(scheduler_name, seed):
    """Differential fuzz: FastBankSched and BankReadIndex agree on every
    observable after every one of ``FUZZ_OPS`` random operations."""
    scheduler = _attached_scheduler(scheduler_name)
    rng = random.Random(seed * 1000 + 7)
    ref = BankReadIndex()
    fast = FastBankSched()
    live: list[tuple[MemoryRequest, MemoryRequest]] = []
    now = 0
    for _ in range(FUZZ_OPS):
        now += rng.randrange(1, 5)
        op = rng.random()
        if op < 0.5 or not live:
            ra, rb = _twin_requests(rng, now)
            if scheduler_name == "NFQ":
                # The deadline stamp is part of the key; stamp the primary
                # through the real hook and mirror it onto the twin.
                scheduler.on_enqueue(ra, now)
                rb.virtual_finish = ra.virtual_finish
            elif scheduler_name == "PAR-BS":
                ra.marked = rb.marked = rng.random() < 0.5
            ref.add(ra)
            ref.push(ra, scheduler)
            fast.add(rb)
            fast.push(rb, scheduler)
            live.append((ra, rb))
        elif op < 0.85:
            ra, rb = live.pop(rng.randrange(len(live)))
            ref.remove(ra)
            fast.remove(rb)
        else:
            _mutate_priority_state(scheduler, rng, live, now)
        _assert_observables_equal(ref, fast, scheduler)
    # The mix must have actually exercised non-trivial occupancy.
    assert now > 0 and (live or FUZZ_OPS > 0)


@pytest.mark.parametrize("scheduler_name", SCHEDULER_NAMES)
def test_kernel_stale_array_removal(scheduler_name):
    """Directed corner: epoch bump, then an insert (push skipped on the
    stale arrays), then removal of a pre-bump request — the kernel must
    drop the desynchronized key array rather than swap-pop the wrong slot."""
    scheduler = _attached_scheduler(scheduler_name)
    rng = random.Random(99)
    fast = FastBankSched()
    ref = BankReadIndex()
    pairs = []
    for _ in range(6):
        ra, rb = _twin_requests(rng, 1)
        if scheduler_name == "NFQ":
            scheduler.on_enqueue(ra, 1)
            rb.virtual_finish = ra.virtual_finish
        ref.add(ra), ref.push(ra, scheduler)
        fast.add(rb), fast.push(rb, scheduler)
        pairs.append((ra, rb))
    _assert_observables_equal(ref, fast, scheduler)
    scheduler.bump_index_epoch(2)
    ra, rb = _twin_requests(rng, 2)
    if scheduler_name == "NFQ":
        scheduler.on_enqueue(ra, 2)
        rb.virtual_finish = ra.virtual_finish
    ref.add(ra), ref.push(ra, scheduler)       # push skipped: stale epoch
    fast.add(rb), fast.push(rb, scheduler)
    victim_a, victim_b = pairs[2]
    ref.remove(victim_a)
    fast.remove(victim_b)                       # stale-array drop path
    _assert_observables_equal(ref, fast, scheduler)


# -- golden command streams -----------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("cores", [4, 8])
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_command_stream_golden(scheduler, cores, seed):
    """The packed-key kernel issues the exact same DRAM command stream as
    the heap-indexed reference — entry by entry: (cycle, request id,
    thread, channel, bank, row, direction)."""
    reference = _run("python", scheduler, cores, seed)
    fast = _run("fast", scheduler, cores, seed)
    assert len(reference.controller.command_log) > 100
    assert fast.controller.command_log == reference.controller.command_log
