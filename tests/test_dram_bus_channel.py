"""Unit tests for the data bus and channel models."""

from repro.dram.bus import DataBus
from repro.dram.channel import Channel
from repro.dram.timing import ddr2_800


def test_bus_back_to_back_bursts_serialize():
    t = ddr2_800()
    bus = DataBus(t)
    first = bus.reserve(0)
    second = bus.reserve(0)
    assert first == 0
    assert second == t.tBUS
    assert bus.free_at == 2 * t.tBUS


def test_bus_respects_earliest():
    t = ddr2_800()
    bus = DataBus(t)
    assert bus.reserve(100) == 100
    assert bus.free_at == 100 + t.tBUS


def test_bus_counts_busy_cycles_and_transfers():
    t = ddr2_800()
    bus = DataBus(t)
    bus.reserve(0)
    bus.reserve(0)
    assert bus.transfers == 2
    assert bus.busy_cycles == 2 * t.tBUS


def test_bus_utilization():
    t = ddr2_800()
    bus = DataBus(t)
    bus.reserve(0)
    assert bus.utilization(t.tBUS * 2) == 0.5
    assert bus.utilization(0) == 0.0


def test_channel_has_banks_and_bus():
    ch = Channel(ddr2_800(), num_banks=8)
    assert ch.num_banks == 8
    assert len({id(b) for b in ch.banks}) == 8


def test_channel_command_slots_are_spaced_by_tck():
    t = ddr2_800()
    ch = Channel(t, num_banks=8)
    first = ch.command_slot(0)
    second = ch.command_slot(0)
    assert first == 0
    assert second == t.tCK


def test_channel_next_command_time_does_not_consume():
    t = ddr2_800()
    ch = Channel(t, num_banks=8)
    ch.command_slot(0)
    assert ch.next_command_time(0) == t.tCK
    assert ch.next_command_time(0) == t.tCK  # unchanged
    assert ch.command_slot(5 * t.tCK) == 5 * t.tCK


def test_channel_requires_banks():
    import pytest

    with pytest.raises(ValueError):
        Channel(ddr2_800(), num_banks=0)
