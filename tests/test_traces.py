"""Trace-ingestion subsystem: formats, decoding, sources, sample library.

Covers the streaming front-end end to end: line parsers and format
auto-detection, gzip/plain content identity, the O(1)-memory guarantee
on a 100k+-line trace, address-decoder round-trips across presets, a
golden pin of a committed sample's decoded stream, and the pacing /
truncation semantics of :class:`TraceRequestSource`.
"""

from __future__ import annotations

import gzip
import random
import tracemalloc

import pytest

from repro.dram.address import AddressMapping
from repro.traces import (
    DECODER_PRESETS,
    AddressDecoder,
    IngestStats,
    SAMPLE_TRACES,
    TraceFormatError,
    TraceRecord,
    TraceRequestSource,
    detect_format,
    ensure_sample_trace,
    open_trace,
    parse_decoder,
    parse_k6_line,
    parse_mase_line,
    trace_content_sha256,
)

K6_LINES = """\
# comment header
0x7f4228 P_MEM_WR 186
0x7f4290 P_MEM_RD 200
0x0 BOFF 210
0x7f42f0 P_FETCH 231
not a trace line
0x7f4300 P_LOCK_WR 245
"""

MASE_LINES = """\
; mase comment
0x1003f10 IFETCH 0
0x1003f80 READ 12
0x2000000 WRITE 30
"""


def write(tmp_path, name, text, compress=False):
    path = tmp_path / name
    if compress:
        path.write_bytes(gzip.compress(text.encode()))
    else:
        path.write_text(text)
    return path


# -- line parsers -------------------------------------------------------------
def test_parse_k6_line_kinds():
    assert parse_k6_line("0x10 P_MEM_RD 5") == TraceRecord(0x10, False, 5)
    assert parse_k6_line("0x10 P_MEM_WR 5") == TraceRecord(0x10, True, 5)
    assert parse_k6_line("0x10 P_FETCH 5") == TraceRecord(0x10, False, 5)
    assert parse_k6_line("0x10 P_LOCK_RD 5") == TraceRecord(0x10, False, 5)
    assert parse_k6_line("0x10 P_LOCK_WR 5") == TraceRecord(0x10, True, 5)
    # Access-free but valid K6 lines: None, not "skip".
    assert parse_k6_line("0x0 BOFF 7") is None
    assert parse_k6_line("0x0 P_INT_ACK 7") is None


def test_parse_mase_line_kinds():
    assert parse_mase_line("0x10 READ 5") == TraceRecord(0x10, False, 5)
    assert parse_mase_line("0x10 IFETCH 5") == TraceRecord(0x10, False, 5)
    assert parse_mase_line("0x10 WRITE 5") == TraceRecord(0x10, True, 5)


@pytest.mark.parametrize(
    "line",
    [
        "garbage",
        "0x10 P_MEM_RD",  # missing cycle
        "0x10 NOPE 5",  # unknown op
        "zz P_MEM_RD 5",  # bad address
        "0x10 P_MEM_RD five",  # bad cycle
        "0x10 P_MEM_RD -5",  # negative cycle
    ],
)
def test_parse_k6_line_rejects(line):
    assert parse_k6_line(line) == "skip"


def test_detect_format_disjoint_vocabularies():
    assert detect_format(["# c", "0x10 P_MEM_RD 5"]) == "k6"
    assert detect_format(["0x10 READ 5"]) == "mase"
    with pytest.raises(TraceFormatError):
        detect_format(["# only", "; comments"])


# -- streaming reader ---------------------------------------------------------
def test_open_trace_k6_plain(tmp_path):
    path = write(tmp_path, "t.k6", K6_LINES)
    stats = IngestStats()
    records = list(open_trace(path, stats=stats))
    assert stats.format == "k6"
    assert [r.is_write for r in records] == [True, False, False, True]
    assert stats.records == 4
    assert stats.lines_skipped == 1  # "not a trace line"
    assert stats.lines_read == 7


def test_open_trace_gzip_by_content_not_name(tmp_path):
    # Gzip detection is by magic bytes: the name says nothing.
    path = write(tmp_path, "t.mase", MASE_LINES, compress=True)
    records = list(open_trace(path))
    assert len(records) == 3
    assert records[2] == TraceRecord(0x2000000, True, 30)


def test_open_trace_explicit_format_skips_other_vocabulary(tmp_path):
    path = write(tmp_path, "t.k6", K6_LINES)
    stats = IngestStats()
    assert list(open_trace(path, format="mase", stats=stats)) == []
    assert stats.lines_skipped == 6  # every k6 line is noise to mase


def test_open_trace_rejects_unknown_format(tmp_path):
    path = write(tmp_path, "t.k6", K6_LINES)
    with pytest.raises(TraceFormatError):
        list(open_trace(path, format="dramsim3"))


def test_open_trace_undetectable_raises(tmp_path):
    path = write(tmp_path, "noise.txt", "# nothing\n; here\n")
    with pytest.raises(TraceFormatError):
        list(open_trace(path))


def test_content_hash_identical_plain_vs_gzip(tmp_path):
    plain = write(tmp_path, "a.k6", K6_LINES)
    gzipped = write(tmp_path, "b.k6.gz", K6_LINES, compress=True)
    assert trace_content_sha256(plain) == trace_content_sha256(gzipped)


# -- address decoding ---------------------------------------------------------
@pytest.mark.parametrize(
    "preset", ["paper", "dramsim2", "channel-interleave", "bank-low"]
)
def test_decoder_round_trip_property(preset):
    decoder = DECODER_PRESETS[preset]
    rng = random.Random(0xDEC0DE)
    for _ in range(500):
        address = rng.getrandbits(rng.randint(8, 40)) << decoder.offset_bits
        decoded = decoder.decode(address)
        assert decoder.encode(**decoded._asdict()) == address
    # And the other direction: random in-range coordinates survive.
    for _ in range(200):
        coords = {
            field: rng.randrange(1 << bits) for field, bits in decoder.fields
        }
        assert decoder.decode(decoder.encode(**coords))._asdict() == {
            f: coords.get(f, 0)
            for f in ("channel", "rank", "bank", "row", "column")
        }


def test_decoder_encode_validates():
    decoder = DECODER_PRESETS["dramsim2"]  # row:14,rank:1,bank:3,column:4
    with pytest.raises(ValueError):
        decoder.encode(bank=8, row=1)  # 8 does not fit 3 bits
    with pytest.raises(ValueError):
        decoder.encode(channel=1)  # layout has no channel field
    # The MSB field may overflow upward, mirroring decode.
    big = decoder.encode(row=1 << 20)
    assert decoder.decode(big).row == 1 << 20


def test_decoder_spec_round_trip():
    decoder = parse_decoder("row=14,rank=1,bank=3,column=4")
    assert decoder.fields == DECODER_PRESETS["dramsim2"].fields
    assert parse_decoder(decoder.spec()).fields == decoder.fields
    with pytest.raises(ValueError):
        parse_decoder("no-such-preset")
    with pytest.raises(ValueError):
        parse_decoder("row=fourteen")
    with pytest.raises(ValueError):
        AddressDecoder(fields=(("row", 4), ("row", 4)))


def test_map_to_folds_ranks_into_rows():
    decoder = DECODER_PRESETS["dramsim2"]
    mapping = AddressMapping()  # 8 banks, single channel
    raw = decoder.encode(row=37, rank=1, bank=5, column=3)
    byte_addr = decoder.map_to(mapping, raw)
    coords = mapping.map(byte_addr)
    # flat bank 1*8+5=13 -> bank 5 with a carry into the row; 16 source
    # banks over 8 target banks scale rows by 2.
    assert coords.bank == 13 % mapping.num_banks == 5
    assert coords.row == 37 * 2 + 13 // mapping.num_banks == 75
    assert coords.column == 3


def test_golden_decoded_stream_for_committed_sample():
    """Pin the decoded prefix of a committed sample: any change to the
    parser, the generator, or the dramsim2 preset shows up here."""
    decoder = DECODER_PRESETS["dramsim2"]
    golden = [
        (0xC0E6C00, 0, 0, (0, 1, 3, 12345, 0)),
        (0x8A56180, 1, 29, (0, 1, 0, 8853, 6)),
        (0x7F56200, 1, 52, (0, 1, 0, 8149, 8)),
        (0xAF44E40, 0, 61, (0, 0, 3, 11217, 9)),
        (0x95E6080, 0, 80, (0, 1, 0, 9593, 2)),
        (0x27E2C40, 0, 86, (0, 1, 3, 2552, 1)),
        (0xFC9FEC0, 0, 94, (0, 1, 7, 16167, 11)),
        (0x1D44B80, 1, 100, (0, 0, 2, 1873, 14)),
    ]
    records = open_trace(ensure_sample_trace("chase-hi"))
    for address, is_write, cycle, coords in golden:
        record = next(records)
        assert record == TraceRecord(address, bool(is_write), cycle)
        decoded = decoder.decode(record.address)
        assert tuple(decoded) == coords
    records.close()


# -- request source -----------------------------------------------------------
def test_source_pacing_and_gap_cap(tmp_path):
    path = write(
        tmp_path,
        "t.mase",
        "0x40 READ 100\n0x80 WRITE 110\n0xc0 READ 999999\n",
    )
    entries = list(TraceRequestSource(path, decoder="paper"))
    assert [e.gap for e in entries] == [0, 10, 2048]  # first 0; huge capped
    assert [e.is_write for e in entries] == [False, True, False]
    half = list(TraceRequestSource(path, decoder="paper", pacing=0.5))
    assert [e.gap for e in half] == [0, 5, 2048]


def test_source_truncation_flag_is_exact(tmp_path):
    path = write(
        tmp_path, "t.mase", "".join(f"0x{i * 64:x} READ {i}\n" for i in range(5))
    )
    source = TraceRequestSource(path, decoder="paper")
    stats = IngestStats()
    assert len(list(source.entries(max_requests=3, stats=stats))) == 3
    assert stats.truncated
    stats = IngestStats()
    # Exactly the file's record count: consumed fully, NOT truncated.
    assert len(list(source.entries(max_requests=5, stats=stats))) == 5
    assert not stats.truncated


def test_source_instruction_budget_stop(tmp_path):
    path = write(
        tmp_path, "t.mase", "".join(f"0x{i * 64:x} READ {i * 10}\n" for i in range(100))
    )
    trace = TraceRequestSource(path, decoder="paper").materialize(
        max_instructions=55
    )
    # Entries cost gap+1 instructions: 1, 11, 11, ... -> 5 fit in 55.
    assert len(trace.entries) == 5
    assert trace.ingest.truncated
    assert trace.ingest.requests_read == 5


def test_source_materialize_carries_ingest_stats(tmp_path):
    path = write(tmp_path, "t.k6", K6_LINES)
    trace = TraceRequestSource(path, decoder="paper", name="th0").materialize()
    assert trace.name == "th0"
    assert trace.ingest.requests_read == 4
    assert trace.ingest.lines_skipped == 1
    assert not trace.ingest.truncated


def test_source_rejects_bad_knobs(tmp_path):
    path = write(tmp_path, "t.k6", K6_LINES)
    with pytest.raises(ValueError):
        TraceRequestSource(path, pacing=-1)
    with pytest.raises(ValueError):
        TraceRequestSource(path, gap_cap=-1)


# -- O(1) memory guarantee ----------------------------------------------------
def test_hundred_k_line_gzip_streams_in_constant_memory(tmp_path):
    """A 100k+-line gzip trace must stream through TraceRequestSource
    without resident memory scaling with its length."""
    sample = SAMPLE_TRACES["stream-100k"]
    assert not sample.committed and sample.lines >= 100_000
    path = ensure_sample_trace("stream-100k", directory=tmp_path)
    source = TraceRequestSource(path)
    tracemalloc.start()
    try:
        stats = source.scan()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert stats.records >= 100_000
    assert not stats.truncated
    # The decompressed stream is megabytes; the reader holds one record
    # plus fixed decode buffers.  A generous ceiling still catches any
    # accidental read()/readlines()/accumulation regression.
    assert peak < 2_000_000, f"streaming reader peaked at {peak} bytes"


# -- sample library -----------------------------------------------------------
def test_sample_generation_is_deterministic(tmp_path):
    a = ensure_sample_trace("stream-hi", directory=tmp_path / "a")
    b = ensure_sample_trace("stream-hi", directory=tmp_path / "b")
    assert a.read_bytes() == b.read_bytes()


def test_committed_samples_match_pinned_hashes():
    for name, sample in SAMPLE_TRACES.items():
        if not sample.committed:
            continue
        path = ensure_sample_trace(name)  # verifies the pin itself
        assert trace_content_sha256(path) == sample.sha256


def test_mpki_ladder_hi_vs_lo():
    """The -hi rungs must be markedly more memory-intensive (smaller
    inter-request gaps) than the -lo rungs — that is the ladder."""

    def mean_gap(name):
        entries = TraceRequestSource(ensure_sample_trace(name)).materialize().entries
        return sum(e.gap for e in entries) / len(entries)

    assert mean_gap("stream-hi") * 5 < mean_gap("stream-lo")
    assert mean_gap("conflict-hi") * 5 < mean_gap("conflict-lo")


def test_unknown_sample_name():
    with pytest.raises(KeyError):
        ensure_sample_trace("no-such-sample")
