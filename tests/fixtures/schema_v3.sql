-- Frozen schema-v3 campaign database, exactly as written by code at
-- SCHEMA_VERSION = 3 (the v1 base DDL plus the v2 wall_time_s ALTER and
-- the v3 observability-plane statements).
-- tests/test_store_migration.py builds a database from this script,
-- inserts rows the way v3-era code would, then opens it with the
-- current ResultStore and asserts the v4 migration upgrades in place
-- without touching a byte of existing data.  Do not edit to match new
-- schema versions -- being stale is this file's entire job.
CREATE TABLE schema_version (version INTEGER NOT NULL);
INSERT INTO schema_version (version) VALUES (3);
CREATE TABLE campaigns (
    fingerprint TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    instructions INTEGER NOT NULL
);
CREATE TABLE jobs (
    key         TEXT PRIMARY KEY,
    campaign    TEXT NOT NULL REFERENCES campaigns(fingerprint),
    num_cores   INTEGER NOT NULL,
    mix_index   INTEGER NOT NULL,
    variant     TEXT NOT NULL,
    scheduler   TEXT NOT NULL,
    workload_json TEXT NOT NULL,
    kwargs_json TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    instructions INTEGER NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending'
                CHECK (status IN ('pending', 'done', 'failed')),
    attempts    INTEGER NOT NULL DEFAULT 0,
    error       TEXT,
    result_json TEXT
);
CREATE INDEX jobs_by_campaign ON jobs (campaign, status);
ALTER TABLE jobs ADD COLUMN wall_time_s REAL;
CREATE TABLE progress (
    key         TEXT NOT NULL,
    attempt     INTEGER NOT NULL,
    worker      TEXT,
    status      TEXT NOT NULL,
    wall_time_s REAL,
    events_per_sec REAL,
    metrics_json TEXT,
    updated_at  REAL,
    PRIMARY KEY (key, attempt)
);
ALTER TABLE campaigns ADD COLUMN manifest_json TEXT;
ALTER TABLE campaigns ADD COLUMN metrics_json TEXT;
