"""Fault injection and the recovery paths it exists to exercise.

The load-bearing test here is the chaos campaign: workers killed by the
plan, cache entries corrupted up front, SQLite commits hiccuping — and
the resumed campaign still exports a report byte-identical to a
fault-free golden run.
"""

import sqlite3

import pytest

from repro.campaign.orchestrator import run_campaign
from repro.campaign.report import export_text
from repro.campaign.spec import spec_from_dict
from repro.campaign.store import ResultStore
from repro.envknobs import EnvKnobError
from repro.guard.chaos import ChaosInjectedError, ChaosPlan, chaos_from_env
from repro.sim.diskcache import DiskCache

INSTRUCTIONS = 2_000


def _plan(tmp_path, spec: str) -> ChaosPlan:
    return ChaosPlan.parse(f"{spec},dir={tmp_path / 'markers'}")


# -- plan parsing and decisions ----------------------------------------------
def test_parse_roundtrips_through_spec(tmp_path):
    plan = _plan(tmp_path, "kill=0.5,corrupt=1,sqlite=0.25,seed=7")
    assert (plan.kill, plan.corrupt, plan.sqlite, plan.seed) == (0.5, 1.0, 0.25, 7)
    assert ChaosPlan.parse(plan.spec()) == plan


def test_parse_resolves_marker_dir_when_omitted():
    plan = ChaosPlan.parse("kill=1")
    assert plan.dir  # a fresh temp dir was created
    assert f"dir={plan.dir}" in plan.spec()


@pytest.mark.parametrize(
    "bad",
    ["kill=2", "kill=-0.1", "kill=lots", "seed=x", "flood=1", "kill", "=1"],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(EnvKnobError):
        ChaosPlan.parse(bad)


def test_chaos_from_env(tmp_path):
    assert chaos_from_env({}) is None
    assert chaos_from_env({"REPRO_CHAOS": "  "}) is None
    plan = _plan(tmp_path, "kill=1,seed=3")
    assert chaos_from_env({"REPRO_CHAOS": plan.spec()}) == plan


def test_decisions_are_deterministic_and_rate_bounded(tmp_path):
    plan = _plan(tmp_path, "kill=0.5,seed=9")
    keys = [f"job-{i}" for i in range(200)]
    first = [plan._decide("kill", k) for k in keys]
    assert first == [plan._decide("kill", k) for k in keys]
    assert 0 < sum(first) < len(keys)  # a rate strictly between 0 and 1
    none = _plan(tmp_path, "seed=9")
    assert not any(none._decide("kill", k) for k in keys)


def test_fire_once_is_once_across_plan_copies(tmp_path):
    plan = _plan(tmp_path, "kill=1,seed=1")
    assert plan.fire_once("kill", "job-a") is True
    assert plan.fire_once("kill", "job-a") is False  # marker persists
    # A second plan sharing the marker dir (another process) also sees it.
    assert ChaosPlan.parse(plan.spec()).fire_once("kill", "job-a") is False
    assert plan.fire_once("kill", "job-b") is True  # independent keys


def test_maybe_kill_worker_raises_in_process(tmp_path):
    plan = _plan(tmp_path, "kill=1,seed=1")
    with pytest.raises(ChaosInjectedError):
        plan.maybe_kill_worker("job-a")
    plan.maybe_kill_worker("job-a")  # once-only: the retry survives


# -- cache corruption -> quarantine -> recompute ------------------------------
def test_corrupt_cache_entries_are_quarantined_and_recomputed(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    for i in range(4):
        cache.put("alone", f"entry{i}", {"ipc": float(i)})
    plan = _plan(tmp_path, "corrupt=1,seed=5")
    assert plan.corrupt_cache(cache) == 4
    for i in range(4):
        assert cache.get("alone", f"entry{i}") is None  # miss, not a crash
    assert cache.quarantined == 4
    # Quarantined files are renamed aside and excluded from entries().
    corpses = list((tmp_path / "cache").rglob("*.json.corrupt"))
    assert len(corpses) == 4
    assert cache.entries() == []
    # Recompute-and-restore works; clear() sweeps the corpses too.
    cache.put("alone", "entry0", {"ipc": 0.0})
    assert cache.get("alone", "entry0") == {"ipc": 0.0}
    assert cache.clear() == 5


# -- store commit retries -----------------------------------------------------
def test_store_commit_survives_injected_sqlite_error(tmp_path):
    store = ResultStore(tmp_path / "store.sqlite")
    store.chaos = _plan(tmp_path, "sqlite=1,seed=2")
    # One injected OperationalError per commit key; the retry absorbs it.
    store.record_failure("feedface", "boom")
    store.record_failure("feedface", "boom again")  # marker: no re-injection
    store.close()


def test_store_commit_reraises_persistent_sqlite_error(tmp_path, monkeypatch):
    from repro.campaign import store as store_mod

    store = ResultStore(tmp_path / "store.sqlite")
    monkeypatch.setattr(store_mod, "_COMMIT_BACKOFF_S", 0.001)

    class AlwaysLocked:
        def sqlite_hiccup(self, key):
            raise sqlite3.OperationalError("database is locked (test)")

    store.chaos = AlwaysLocked()
    with pytest.raises(sqlite3.OperationalError):
        store.record_failure("feedface", "boom")
    store.close()


# -- pool-level recovery ------------------------------------------------------
def test_run_jobs_pool_recovers_from_killed_workers(tmp_path, monkeypatch):
    from repro.config import baseline_system
    from repro.sim.pool import SimJob, run_job, run_jobs

    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    jobs = [
        SimJob(
            config=baseline_system(2),
            workload=("mcf", "lbm"),
            scheduler=name,
            instructions=INSTRUCTIONS,
            cache_dir=str(tmp_path / "cache"),
        )
        for name in ("FCFS", "FR-FCFS", "PAR-BS")
    ]
    serial = [run_job(job) for job in jobs]  # fault-free reference
    plan = _plan(tmp_path, "kill=1,seed=6")
    monkeypatch.setenv("REPRO_CHAOS", plan.spec())
    # Every job kills its worker once; the pool respawns (then falls back
    # to serial if needed) and still returns complete, identical results.
    assert run_jobs(jobs, workers=2, job_timeout_s=300) == serial


# -- the full story: chaos campaign converges to the fault-free report --------
def _smoke_spec():
    return spec_from_dict(
        {
            "name": "chaos-smoke",
            "schedulers": ["FR-FCFS", "PAR-BS"],
            "mixes": [["mcf", "libquantum"], ["lbm", "milc"]],
            "mix_count": 0,
            "num_cores": [2],
            "instructions": INSTRUCTIONS,
            "seeds": [0],
        }
    )


def test_serial_campaign_retries_injected_kills(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    spec = _smoke_spec()
    plan = _plan(tmp_path, "kill=1,seed=4")
    with ResultStore(tmp_path / "store.sqlite") as store:
        stats = run_campaign(spec, store, jobs=1, chaos=plan, backoff_s=0.001)
    assert stats.ran == stats.total == 4
    assert stats.failed == 0
    assert stats.retried == 4  # every job died once, succeeded on retry


def test_chaos_campaign_report_matches_fault_free_golden(tmp_path, monkeypatch):
    spec = _smoke_spec()
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_CHAOS", raising=False)

    # Golden: fault-free serial run.
    with ResultStore(tmp_path / "golden.sqlite") as store:
        golden_stats = run_campaign(spec, store, jobs=1)
        golden = export_text(spec, store, fmt="csv")
    assert golden_stats.failed == 0

    # Chaos: every worker killed once, every cache entry corrupted, and
    # SQLite commits hiccuping — over a real process pool.  The plan is
    # exported to the environment so pool workers share the marker dir.
    plan = _plan(tmp_path, "kill=1,corrupt=1,sqlite=1,seed=11")
    monkeypatch.setenv("REPRO_CHAOS", plan.spec())
    with ResultStore(tmp_path / "chaos.sqlite") as store:
        first = run_campaign(
            spec, store, jobs=2, chaos=plan, job_timeout_s=300,
            backoff_s=0.001,
        )
        # Resume: anything dropped by pool deaths is picked up here; the
        # kill markers have all fired, so this pass runs clean.
        second = run_campaign(
            spec, store, jobs=2, chaos=plan, job_timeout_s=300,
            backoff_s=0.001,
        )
        assert first.ran + second.ran == first.total
        assert second.failed == 0
        chaos_report = export_text(spec, store, fmt="csv")

    assert chaos_report == golden
