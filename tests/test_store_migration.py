"""Schema v2 -> v3 migration tests against a frozen v2 fixture.

A database built from ``tests/fixtures/schema_v2.sql`` (the DDL exactly
as v2-era code wrote it) is populated the way an old client would, then
opened with the current :class:`ResultStore`.  The migration must
upgrade in place, leave every pre-existing row byte-identical, and keep
``campaign status`` and resume working — resuming simulates only the
jobs that were missing, never the rows recorded before the upgrade.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.campaign.orchestrator import run_campaign
from repro.campaign.report import status_report
from repro.campaign.serde import result_to_json
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.config import baseline_system
from repro.sim import pool
from repro.sim.runner import ExperimentRunner

FIXTURE = Path(__file__).parent / "fixtures" / "schema_v2.sql"


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="migrate",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=20_000,
    )


def _v2_result_json(job) -> str:
    """result_json as a v2-era client would have written it (no event
    counter keys -- those arrived with schema v3)."""
    runner = ExperimentRunner(
        baseline_system(job.num_cores),
        instructions=job.instructions,
        seed=job.seed,
        cache_dir=None,
    )
    result = runner.run_workload(
        list(job.workload), job.scheduler, **job.kwargs_dict()
    )
    data = json.loads(result_to_json(result))
    for key in ("events_processed", "events_elided", "min_rebuilds"):
        data.pop(key, None)
    return json.dumps(data, sort_keys=True)


@pytest.fixture
def v2_db(tmp_path):
    """A v2 database holding one campaign: one job done, three pending."""
    spec = _spec()
    grid = spec.expand()
    path = tmp_path / "v2.sqlite"
    conn = sqlite3.connect(path)
    conn.executescript(FIXTURE.read_text())
    conn.execute(
        "INSERT INTO campaigns (fingerprint, name, spec_json, instructions) "
        "VALUES (?, ?, ?, ?)",
        (
            spec.fingerprint(),
            spec.name,
            json.dumps(spec.to_dict(), sort_keys=True),
            spec.resolved_instructions(),
        ),
    )
    for job in grid:
        conn.execute(
            "INSERT INTO jobs (key, campaign, num_cores, mix_index, variant, "
            " scheduler, workload_json, kwargs_json, seed, instructions) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job.key,
                spec.fingerprint(),
                job.num_cores,
                job.mix_index,
                job.variant,
                job.scheduler,
                json.dumps(list(job.workload)),
                json.dumps(job.kwargs_dict(), sort_keys=True),
                job.seed,
                job.instructions,
            ),
        )
    done_job = grid[0]
    conn.execute(
        "UPDATE jobs SET status = 'done', attempts = 1, wall_time_s = 1.25, "
        "result_json = ? WHERE key = ?",
        (_v2_result_json(done_job), done_job.key),
    )
    conn.commit()
    conn.close()
    return path


def _dump_jobs(path) -> list[tuple]:
    """Every v2-era column of every job row, in key order."""
    conn = sqlite3.connect(path)
    try:
        return conn.execute(
            "SELECT key, campaign, num_cores, mix_index, variant, scheduler, "
            " workload_json, kwargs_json, seed, instructions, status, "
            " attempts, error, result_json, wall_time_s "
            "FROM jobs ORDER BY key"
        ).fetchall()
    finally:
        conn.close()


def test_migration_upgrades_in_place_preserving_rows(v2_db):
    before = _dump_jobs(v2_db)
    with ResultStore(v2_db) as store:
        assert store.schema_version() == SCHEMA_VERSION == 3
        # v3 surfaces exist and start empty for a migrated database.
        assert store.manifest(_spec().fingerprint()) is None
        assert store.metrics(_spec().fingerprint()) is None
        assert store.progress_for(j.key for j in _spec().expand()) == {}
    assert _dump_jobs(v2_db) == before  # old rows byte-identical


def test_status_works_on_migrated_database(v2_db):
    spec = _spec()
    with ResultStore(v2_db) as store:
        report = status_report(spec, store)
        assert "1/4 done, 3 pending, 0 failed" in report


def test_resume_simulates_only_missing_jobs(v2_db):
    spec = _spec()
    before = _dump_jobs(v2_db)
    done_key = spec.expand()[0].key
    with ResultStore(v2_db) as store:
        pool.JOB_STATS["executed"] = 0
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.ran, stats.skipped, stats.failed) == (3, 1, 0)
        assert pool.JOB_STATS["executed"] == 3  # the v2 row was not re-run
        assert store.counts(spec.fingerprint())["done"] == 4
        # The run pinned a manifest and progress rows for what it ran.
        assert store.manifest(spec.fingerprint()) is not None
        progress = store.progress_for(j.key for j in spec.expand())
        assert set(progress) == {j.key for j in spec.expand()} - {done_key}
    # The pre-migration done row survived the resume byte-for-byte.
    done_before = [row for row in before if row[0] == done_key]
    done_after = [row for row in _dump_jobs(v2_db) if row[0] == done_key]
    assert done_after == done_before


def test_newer_schema_is_refused(tmp_path):
    path = tmp_path / "future.sqlite"
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
    conn.execute("INSERT INTO schema_version (version) VALUES (99)")
    conn.commit()
    conn.close()
    with pytest.raises(RuntimeError, match="newer than this code"):
        ResultStore(path)
