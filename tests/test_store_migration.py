"""Schema migration tests against frozen v2 and v3 fixtures.

Databases built from ``tests/fixtures/schema_v2.sql`` and
``schema_v3.sql`` (the DDL exactly as old code wrote it) are populated
the way old clients would, then opened with the current
:class:`ResultStore`.  Each migration must upgrade in place, leave every
pre-existing row byte-identical, and keep ``campaign status`` and resume
working — resuming simulates only the jobs that were missing, never the
rows recorded before the upgrade.  The v3 -> v4 step additionally has to
leave the new work-queue surfaces (leases, reclaim counter, fencing
sequence) empty but functional: a migrated database must accept lease
claims immediately.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.campaign.orchestrator import run_campaign
from repro.campaign.report import status_report
from repro.campaign.serde import result_to_json
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.config import baseline_system
from repro.sim import pool
from repro.sim.runner import ExperimentRunner

FIXTURE = Path(__file__).parent / "fixtures" / "schema_v2.sql"
FIXTURE_V3 = Path(__file__).parent / "fixtures" / "schema_v3.sql"


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="migrate",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=20_000,
    )


def _v2_result_json(job) -> str:
    """result_json as a v2-era client would have written it (no event
    counter keys -- those arrived with schema v3)."""
    runner = ExperimentRunner(
        baseline_system(job.num_cores),
        instructions=job.instructions,
        seed=job.seed,
        cache_dir=None,
    )
    result = runner.run_workload(
        list(job.workload), job.scheduler, **job.kwargs_dict()
    )
    data = json.loads(result_to_json(result))
    for key in ("events_processed", "events_elided", "min_rebuilds"):
        data.pop(key, None)
    return json.dumps(data, sort_keys=True)


@pytest.fixture
def v2_db(tmp_path):
    """A v2 database holding one campaign: one job done, three pending."""
    spec = _spec()
    grid = spec.expand()
    path = tmp_path / "v2.sqlite"
    conn = sqlite3.connect(path)
    conn.executescript(FIXTURE.read_text())
    conn.execute(
        "INSERT INTO campaigns (fingerprint, name, spec_json, instructions) "
        "VALUES (?, ?, ?, ?)",
        (
            spec.fingerprint(),
            spec.name,
            json.dumps(spec.to_dict(), sort_keys=True),
            spec.resolved_instructions(),
        ),
    )
    for job in grid:
        conn.execute(
            "INSERT INTO jobs (key, campaign, num_cores, mix_index, variant, "
            " scheduler, workload_json, kwargs_json, seed, instructions) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job.key,
                spec.fingerprint(),
                job.num_cores,
                job.mix_index,
                job.variant,
                job.scheduler,
                json.dumps(list(job.workload)),
                json.dumps(job.kwargs_dict(), sort_keys=True),
                job.seed,
                job.instructions,
            ),
        )
    done_job = grid[0]
    conn.execute(
        "UPDATE jobs SET status = 'done', attempts = 1, wall_time_s = 1.25, "
        "result_json = ? WHERE key = ?",
        (_v2_result_json(done_job), done_job.key),
    )
    conn.commit()
    conn.close()
    return path


def _dump_jobs(path) -> list[tuple]:
    """Every v2-era column of every job row, in key order."""
    conn = sqlite3.connect(path)
    try:
        return conn.execute(
            "SELECT key, campaign, num_cores, mix_index, variant, scheduler, "
            " workload_json, kwargs_json, seed, instructions, status, "
            " attempts, error, result_json, wall_time_s "
            "FROM jobs ORDER BY key"
        ).fetchall()
    finally:
        conn.close()


def test_migration_upgrades_in_place_preserving_rows(v2_db):
    before = _dump_jobs(v2_db)
    with ResultStore(v2_db) as store:
        assert store.schema_version() == SCHEMA_VERSION == 4
        # v3/v4 surfaces exist and start empty for a migrated database.
        assert store.manifest(_spec().fingerprint()) is None
        assert store.metrics(_spec().fingerprint()) is None
        assert store.progress_for(j.key for j in _spec().expand()) == {}
        assert store.leases_for(j.key for j in _spec().expand()) == {}
        assert store.reclaim_count(_spec().fingerprint()) == 0
    assert _dump_jobs(v2_db) == before  # old rows byte-identical


def test_status_works_on_migrated_database(v2_db):
    spec = _spec()
    with ResultStore(v2_db) as store:
        report = status_report(spec, store)
        assert "1/4 done, 3 pending, 0 failed" in report


def test_resume_simulates_only_missing_jobs(v2_db):
    spec = _spec()
    before = _dump_jobs(v2_db)
    done_key = spec.expand()[0].key
    with ResultStore(v2_db) as store:
        pool.JOB_STATS["executed"] = 0
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.ran, stats.skipped, stats.failed) == (3, 1, 0)
        assert pool.JOB_STATS["executed"] == 3  # the v2 row was not re-run
        assert store.counts(spec.fingerprint())["done"] == 4
        # The run pinned a manifest and progress rows for what it ran.
        assert store.manifest(spec.fingerprint()) is not None
        progress = store.progress_for(j.key for j in spec.expand())
        assert set(progress) == {j.key for j in spec.expand()} - {done_key}
    # The pre-migration done row survived the resume byte-for-byte.
    done_before = [row for row in before if row[0] == done_key]
    done_after = [row for row in _dump_jobs(v2_db) if row[0] == done_key]
    assert done_after == done_before


@pytest.fixture
def v3_db(tmp_path):
    """A v3 database holding one campaign: one job done (with its
    progress heartbeat row, as v3-era code left it), three pending."""
    spec = _spec()
    grid = spec.expand()
    path = tmp_path / "v3.sqlite"
    conn = sqlite3.connect(path)
    conn.executescript(FIXTURE_V3.read_text())
    conn.execute(
        "INSERT INTO campaigns (fingerprint, name, spec_json, instructions) "
        "VALUES (?, ?, ?, ?)",
        (
            spec.fingerprint(),
            spec.name,
            json.dumps(spec.to_dict(), sort_keys=True),
            spec.resolved_instructions(),
        ),
    )
    for job in grid:
        conn.execute(
            "INSERT INTO jobs (key, campaign, num_cores, mix_index, variant, "
            " scheduler, workload_json, kwargs_json, seed, instructions) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job.key,
                spec.fingerprint(),
                job.num_cores,
                job.mix_index,
                job.variant,
                job.scheduler,
                json.dumps(list(job.workload)),
                json.dumps(job.kwargs_dict(), sort_keys=True),
                job.seed,
                job.instructions,
            ),
        )
    done_job = grid[0]
    runner = ExperimentRunner(
        baseline_system(done_job.num_cores),
        instructions=done_job.instructions,
        seed=done_job.seed,
        cache_dir=None,
    )
    result = runner.run_workload(
        list(done_job.workload), done_job.scheduler, **done_job.kwargs_dict()
    )
    conn.execute(
        "UPDATE jobs SET status = 'done', attempts = 1, wall_time_s = 1.25, "
        "result_json = ? WHERE key = ?",
        (result_to_json(result), done_job.key),
    )
    conn.execute(
        "INSERT INTO progress (key, attempt, worker, status, wall_time_s, "
        " events_per_sec, metrics_json, updated_at) "
        "VALUES (?, 0, '4242', 'done', 1.25, 100000.0, ?, 12345.0)",
        (done_job.key, json.dumps({"sim.cycles": 7}, sort_keys=True)),
    )
    conn.commit()
    conn.close()
    return path


def _dump_progress(path) -> list[tuple]:
    conn = sqlite3.connect(path)
    try:
        return conn.execute(
            "SELECT key, attempt, worker, status, wall_time_s, "
            " events_per_sec, metrics_json, updated_at "
            "FROM progress ORDER BY key, attempt"
        ).fetchall()
    finally:
        conn.close()


def test_v3_migration_preserves_jobs_and_progress(v3_db):
    spec = _spec()
    jobs_before = _dump_jobs(v3_db)
    progress_before = _dump_progress(v3_db)
    assert progress_before  # the fixture really wrote a heartbeat row
    with ResultStore(v3_db) as store:
        assert store.schema_version() == SCHEMA_VERSION == 4
        # v4 surfaces exist and start empty for a migrated database.
        assert store.leases_for(j.key for j in spec.expand()) == {}
        assert store.reclaim_count(spec.fingerprint()) == 0
        # The v3-era heartbeat row reads back through the current API.
        progress = store.progress_for(j.key for j in spec.expand())
        assert progress[spec.expand()[0].key]["worker"] == "4242"
        report = status_report(spec, store)
        assert "1/4 done, 3 pending, 0 failed" in report
    assert _dump_jobs(v3_db) == jobs_before  # old rows byte-identical
    assert _dump_progress(v3_db) == progress_before


def test_v3_migrated_store_accepts_lease_claims(v3_db):
    """A freshly migrated database is immediately drainable: claims
    succeed, fencing sequences start at zero, completion lands."""
    from repro.campaign.queue import LeaseQueue

    spec = _spec()
    grid = spec.expand()
    with ResultStore(v3_db) as store:
        queue = LeaseQueue(store, spec.fingerprint(), worker_id="w1")
        lease = queue.claim_next([j.key for j in grid])
        assert lease is not None
        assert lease.attempt == 1  # first claim ever on this row
        assert lease.key != grid[0].key  # the done row is not claimable
        assert queue.heartbeat(lease) is not None
        queue.release(lease)
        assert store.leases_for(j.key for j in grid) == {}


def test_newer_schema_is_refused(tmp_path):
    path = tmp_path / "future.sqlite"
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
    conn.execute("INSERT INTO schema_version (version) VALUES (99)")
    conn.commit()
    conn.close()
    with pytest.raises(RuntimeError, match="newer than this code"):
        ResultStore(path)
