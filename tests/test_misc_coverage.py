"""Coverage for remaining edges: calibration helpers, summary deltas,
system error paths, generator extremes, and named 16-core mixes."""

import pytest

from repro.config import SystemConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.events import SimulationError
from repro.experiments.aggregate import AggregateResult
from repro.experiments.summary import Table4Result
from repro.metrics.summary import ThreadResult, WorkloadResult
from repro.sim.factory import make_scheduler
from repro.sim.system import System
from repro.workloads.calibrate import measure
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import SIXTEEN_CORE_MIXES
from repro.workloads.profiles import BenchmarkProfile, profile


def test_calibrate_measure_returns_blp_and_ast():
    blp, ast = measure(profile("hmmer"), walkers=1, dep_prob=0.9, cont_dep_prob=0.5,
                       instructions=20_000)
    assert blp >= 1.0
    assert ast > 0


def test_calibrate_measure_walkers_raise_blp():
    low, _ = measure(profile("mcf"), 1, 0.0, 0.0, instructions=20_000)
    high, _ = measure(profile("mcf"), 8, 0.0, 0.0, instructions=20_000)
    assert high > low


def test_sixteen_core_numbered_mix_contents():
    mix = SIXTEEN_CORE_MIXES["1,5,6,9,13-22,27,28"]
    assert mix[0] == "leslie3d"  # benchmark #1
    assert "matlab" in mix  # #5
    assert "mcf" in mix  # #9
    assert "gromacs" in mix and "sjeng" in mix  # #27, #28
    assert len(mix) == 16


def test_generator_zero_idle_gap_for_extreme_intensity():
    hot = BenchmarkProfile(
        number=1, name="firehose", kind="INT", mcpi=20.0, mpki=400.0,
        row_hit_rate=0.5, blp=2.0, ast_per_req=60, category=7,
    )
    trace = TraceGenerator().generate(hot, instructions=20_000, seed=0)
    # Demand exceeds what burst gaps alone provide: idle gap clamps to 0.
    assert max(e.gap for e in trace) <= 2 * 2 - 1 + 1


def test_system_event_budget_guard():
    traces = [Trace([TraceEntry(10, i * 64) for i in range(200)])]
    system = System(SystemConfig(num_cores=1), make_scheduler("FCFS", 1), traces)
    with pytest.raises(SimulationError):
        system.run(max_events=10)


def _thread(tid, ipc_shared, ipc_alone):
    return ThreadResult(
        thread_id=tid, benchmark=f"b{tid}", ipc_shared=ipc_shared,
        ipc_alone=ipc_alone, mcpi_shared=2.0, mcpi_alone=1.0,
        ast_per_req=100.0, blp_shared=1.0, blp_alone=1.0,
        row_hit_rate=0.5, worst_latency=1000,
    )


def _fake_result(scheduler, ipcs):
    return WorkloadResult(
        scheduler=scheduler,
        workload=tuple(f"b{i}" for i in range(len(ipcs))),
        threads=tuple(_thread(i, ipc, 2.0) for i, ipc in enumerate(ipcs)),
    )


def test_table4_deltas_vs_stfm():
    per_mix = {
        name: [_fake_result(name, [1.0, 1.5])]
        for name in ("FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS")
    }
    # Give PAR-BS better throughput than STFM.
    per_mix["PAR-BS"] = [_fake_result("PAR-BS", [1.2, 1.6])]
    aggregate = AggregateResult(num_cores=4, mixes=[["b0", "b1"]], per_mix=per_mix)
    table = Table4Result(aggregates={4: aggregate})
    deltas = table.deltas_vs_stfm(4)
    assert deltas["wspeedup_pct"] > 0
    assert "Table 4, 4-core" in table.report()


def test_nfq_custom_threshold_constructor():
    scheduler = make_scheduler("NFQ", 4, inversion_threshold=5000)
    assert scheduler._inversion_threshold == 5000


def test_stfm_custom_interval_constructor():
    scheduler = make_scheduler("STFM", 4, interval_length=1 << 18, alpha=1.5)
    assert scheduler.interval_length == 1 << 18
    assert scheduler.alpha == 1.5


def test_aggregate_result_summary_keys():
    per_mix = {"STFM": [_fake_result("STFM", [1.0])]}
    aggregate = AggregateResult(num_cores=4, mixes=[["b0"]], per_mix=per_mix)
    summary = aggregate.summary()["STFM"]
    assert set(summary) == {"unfairness", "wspeedup", "hspeedup", "ast", "wc_latency"}
