"""Unit tests for DRAM timing parameters."""

import pytest

from repro.dram.timing import DramTiming, ddr2_800


def test_baseline_matches_paper_table2():
    # DDR2-800 at 4 GHz: 15 ns = 60 cycles, BL/2 = 10 ns = 40 cycles.
    t = ddr2_800()
    assert t.tCL == 60
    assert t.tRCD == 60
    assert t.tRP == 60
    assert t.tBUS == 40


def test_row_hit_latency_is_cas_only():
    t = ddr2_800()
    assert t.row_hit_latency == t.tCL


def test_row_closed_latency_adds_activate():
    t = ddr2_800()
    assert t.row_closed_latency == t.tRCD + t.tCL


def test_row_conflict_latency_adds_precharge():
    t = ddr2_800()
    assert t.row_conflict_latency == t.tRP + t.tRCD + t.tCL


def test_latency_ordering():
    t = ddr2_800()
    assert t.row_hit_latency < t.row_closed_latency < t.row_conflict_latency


def test_round_trip_includes_overhead_and_burst():
    t = ddr2_800()
    assert t.round_trip("hit") == t.overhead + t.tCL + t.tBUS
    assert t.round_trip("closed") == t.overhead + t.tRCD + t.tCL + t.tBUS
    assert t.round_trip("conflict") == t.overhead + t.tRP + t.tRCD + t.tCL + t.tBUS


def test_round_trip_hit_is_160_cycles():
    # The paper's uncontended row-hit round trip: 40 ns = 160 cycles.
    assert ddr2_800().round_trip("hit") == 160


def test_round_trip_rejects_unknown_kind():
    with pytest.raises(KeyError):
        ddr2_800().round_trip("open")


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        DramTiming(tCL=-1)


def test_zero_tck_rejected():
    with pytest.raises(ValueError):
        DramTiming(tCK=0)


def test_timing_is_immutable():
    t = ddr2_800()
    with pytest.raises(AttributeError):
        t.tCL = 10


def test_custom_timing():
    t = DramTiming(tCK=4, tCL=20, tRCD=20, tRP=20, tRAS=60, tWR=20, tBUS=16, overhead=0)
    assert t.row_conflict_latency == 60
    assert t.round_trip("hit") == 36
