"""Tests for resumable campaign execution.

The acceptance bar: interrupting a campaign and re-running it must resume
*exactly* — no completed cell re-simulated (verified against the worker
job counter), store row counts correct at every step, and the final
report byte-identical to an uninterrupted run's.
"""

import pytest

from repro.campaign.orchestrator import run_and_collect, run_campaign
from repro.campaign.report import campaign_report, export_text, status_report
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import ResultStore
from repro.config import baseline_system
from repro.obs.trace import RingBufferSink, Tracer
from repro.sim import pool
from repro.sim.runner import ExperimentRunner


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="orch",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=20_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def test_run_campaign_completes_grid(tmp_path):
    spec = _spec()
    with ResultStore(tmp_path / "db.sqlite") as store:
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.total, stats.ran, stats.skipped, stats.failed) == (4, 4, 0, 0)
        assert store.counts(spec.fingerprint())["done"] == 4


def test_interrupted_run_resumes_exactly(tmp_path):
    """--limit models an interruption; the resumed run must simulate
    only the missing cells (worker job counter proves it) and end with
    a report byte-identical to an uninterrupted run's."""
    spec = _spec()
    db = tmp_path / "interrupted.sqlite"

    with ResultStore(db) as store:
        pool.JOB_STATS["executed"] = 0
        stats = run_campaign(spec, store, jobs=1, limit=1)
        assert (stats.ran, stats.deferred) == (1, 3)
        assert pool.JOB_STATS["executed"] == 1
        assert store.counts(spec.fingerprint())["done"] == 1

    with ResultStore(db) as store:  # "new process": fresh connection
        pool.JOB_STATS["executed"] = 0
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.ran, stats.skipped) == (3, 1)
        assert pool.JOB_STATS["executed"] == 3  # nothing re-simulated
        assert store.counts(spec.fingerprint())["done"] == 4

    with ResultStore(db) as store:
        pool.JOB_STATS["executed"] = 0
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.ran, stats.skipped) == (0, 4)
        assert pool.JOB_STATS["executed"] == 0

    # Byte-identical reports, interrupted+resumed vs uninterrupted.
    clean_db = tmp_path / "clean.sqlite"
    with ResultStore(clean_db) as store:
        run_campaign(spec, store, jobs=1)
    with ResultStore(db) as resumed, ResultStore(clean_db) as clean:
        for fmt in ("markdown", "csv"):
            assert campaign_report(spec, resumed, fmt=fmt) == campaign_report(
                spec, clean, fmt=fmt
            )
        assert export_text(spec, resumed) == export_text(spec, clean)
        assert status_report(spec, resumed) == status_report(spec, clean)


def test_run_and_collect_grid_order_and_equivalence(tmp_path):
    """Campaign results are bit-identical to the direct runner path."""
    spec = _spec()
    with ResultStore(tmp_path / "db.sqlite") as store:
        results = run_and_collect(spec, store, jobs=1)
    runner = ExperimentRunner(baseline_system(4), instructions=20_000)
    grid = spec.expand()
    assert len(results) == len(grid)
    for job, result in zip(grid, results):
        direct = runner.run_workload(
            list(job.workload), job.scheduler, **job.kwargs_dict()
        )
        assert result == direct


def test_retries_then_success(tmp_path, monkeypatch):
    """A transiently failing worker job is retried and ends up committed."""
    spec = _spec(variants=(Variant("FCFS", "FCFS"),), mix_count=1)
    real_run_job = pool.run_job
    calls = {"n": 0}

    def flaky(sim):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient worker crash")
        return real_run_job(sim)

    monkeypatch.setattr(pool, "run_job", flaky)
    with ResultStore(tmp_path / "db.sqlite") as store:
        stats = run_campaign(spec, store, jobs=1, retries=2, backoff_s=0.0)
        assert (stats.ran, stats.failed, stats.retried) == (1, 0, 1)
        assert store.counts(spec.fingerprint())["done"] == 1


def test_exhausted_retries_recorded_as_failed(tmp_path, monkeypatch):
    spec = _spec(variants=(Variant("FCFS", "FCFS"),), mix_count=1)

    def always_broken(sim):
        raise RuntimeError("permanent failure")

    monkeypatch.setattr(pool, "run_job", always_broken)
    with ResultStore(tmp_path / "db.sqlite") as store:
        stats = run_campaign(spec, store, jobs=1, retries=1, backoff_s=0.0)
        assert (stats.ran, stats.failed, stats.retried) == (0, 1, 1)
        failures = store.failures(spec.fingerprint())
        assert list(failures.values()) == ["RuntimeError: permanent failure"]
        # run_and_collect refuses to average over a partial grid.
        with pytest.raises(RuntimeError, match="did not complete"):
            run_and_collect(spec, store, jobs=1)


def test_failed_jobs_retried_by_next_run(tmp_path, monkeypatch):
    spec = _spec(variants=(Variant("FCFS", "FCFS"),), mix_count=1)

    def broken(sim):
        raise RuntimeError("boom")

    with ResultStore(tmp_path / "db.sqlite") as store:
        monkeypatch.setattr(pool, "run_job", broken)
        run_campaign(spec, store, jobs=1, retries=0, backoff_s=0.0)
        assert store.counts(spec.fingerprint())["failed"] == 1
        monkeypatch.undo()
        stats = run_campaign(spec, store, jobs=1)
        assert (stats.ran, stats.failed) == (1, 0)
        assert store.counts(spec.fingerprint())["done"] == 1


def test_parallel_run_matches_serial(tmp_path):
    """Worker fan-out commits the same bits as the serial path."""
    spec = _spec()
    with ResultStore(tmp_path / "serial.sqlite") as store:
        serial = run_and_collect(spec, store, jobs=1)
    with ResultStore(tmp_path / "parallel.sqlite") as store:
        parallel = run_and_collect(spec, store, jobs=2)
    assert serial == parallel


def test_campaign_probe_events(tmp_path):
    spec = _spec(variants=(Variant("FCFS", "FCFS"),), mix_count=1)
    ring = RingBufferSink()
    tracer = Tracer([ring])
    with ResultStore(tmp_path / "db.sqlite") as store:
        run_campaign(spec, store, jobs=1, probe=tracer.probe("campaign"))
    events = [e["ev"] for e in ring]
    assert events[0] == "campaign.start"
    assert events[-1] == "campaign.done"
    assert "campaign.job" in events


def test_aggregate_via_campaign_matches_direct_run_many(tmp_path):
    """`repro aggregate` routed through the campaign store must match the
    pre-refactor direct ExperimentRunner.run_many numbers bit-for-bit."""
    from repro.experiments.aggregate import (
        _run_aggregate_direct,
        run_aggregate,
    )

    runner = ExperimentRunner(baseline_system(4), instructions=20_000)
    direct = _run_aggregate_direct(
        4, count=1, runner=runner, include_sample_mixes=False, seed=42, jobs=1
    )
    with ResultStore(tmp_path / "agg.sqlite") as store:
        via_campaign = run_aggregate(
            4, count=1, instructions=20_000, seed=42, jobs=1, store=store
        )
    assert via_campaign.mixes == direct.mixes
    assert via_campaign.per_mix == direct.per_mix
    assert via_campaign.summary() == direct.summary()


def test_sweep_via_campaign_matches_direct(tmp_path):
    """Ablation sweeps keep their legacy labels and per-mix numbers."""
    from repro.experiments.ablations import marking_cap_sweep

    runner = ExperimentRunner(baseline_system(4), instructions=20_000)
    with ResultStore(tmp_path / "sweep.sqlite") as store:
        result = marking_cap_sweep(
            caps=[1, None],
            count=1,
            include_case_studies=False,
            instructions=20_000,
            store=store,
        )
    assert list(result.variants) == ["c=1", "no-c"]
    for label, cap in (("c=1", 1), ("no-c", None)):
        for mix, got in zip(result.mixes, result.variants[label]):
            assert got == runner.run_workload(mix, "PAR-BS", marking_cap=cap)
