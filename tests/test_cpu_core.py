"""Unit tests for the analytical out-of-order core model.

The core is exercised against a fixed-latency memory port, where expected
cycle counts can be derived by hand.
"""

import pytest

from repro.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceEntry
from repro.events import EventQueue

LATENCY = 200


class FixedLatencyPort:
    """Completes every read after a fixed delay; records issue times."""

    def __init__(self, queue, latency=LATENCY):
        self.queue = queue
        self.latency = latency
        self.issues = []

    def access(self, thread_id, address, is_write, on_complete):
        self.issues.append((self.queue.now, address, is_write))
        if on_complete is not None:
            self.queue.schedule_in(self.latency, on_complete)


def run_core(entries, config=None, latency=LATENCY, repeat=False):
    queue = EventQueue()
    port = FixedLatencyPort(queue, latency)
    core = Core(0, Trace(entries), queue, port, config or CoreConfig(), repeat=repeat)
    core.start()
    queue.run(max_events=1_000_000)
    return core, port


def loads(n, gap=12, stride=64):
    return [TraceEntry(gap, i * stride) for i in range(n)]


def test_compute_only_trace_retires_at_width():
    core, _ = run_core([TraceEntry(299, 0)], latency=0)
    snap = core.snapshot
    assert snap is not None
    assert snap.instructions == 300
    assert snap.cycles == pytest.approx(100, abs=2)  # 300 instr / width 3


def test_single_load_stalls_for_latency():
    core, _ = run_core([TraceEntry(0, 0)])
    snap = core.snapshot
    assert snap.loads == 1
    assert snap.stall_cycles == pytest.approx(LATENCY, abs=3)


def test_independent_loads_overlap():
    core, _ = run_core(loads(10))
    snap = core.snapshot
    # All 10 loads fit in the window and issue nearly together: the core
    # stalls roughly once, not ten times.
    assert snap.stall_cycles < 2 * LATENCY


def test_chained_loads_serialize():
    entries = [
        TraceEntry(12, i * 64, depends_on=(i - 1 if i > 0 else None))
        for i in range(50)
    ]
    core, _ = run_core(entries)
    snap = core.snapshot
    # Every load stalls for the full latency minus retire time of the gap.
    assert snap.avg_stall_per_request == pytest.approx(LATENCY - 5, abs=3)


def test_dependent_request_issued_after_parent_completes():
    entries = [TraceEntry(0, 0), TraceEntry(0, 64, depends_on=0)]
    core, port = run_core(entries)
    assert port.issues[1][0] >= port.issues[0][0] + LATENCY


def test_dependency_does_not_block_independent_younger_loads():
    entries = [
        TraceEntry(0, 0),
        TraceEntry(0, 64, depends_on=0),
        TraceEntry(0, 128),  # independent: must not wait for the chain
    ]
    core, port = run_core(entries)
    issue_times = {addr: t for t, addr, _ in port.issues}
    assert issue_times[128] < issue_times[64]


def test_window_limits_outstanding_loads():
    config = CoreConfig(window_size=30, width=3, mshrs=32)
    # Loads every 10 instructions: only 3 fit in a 30-entry window.
    core, port = run_core(loads(12, gap=9), config)
    first_burst = [t for t, _, _ in port.issues if t < LATENCY]
    assert len(first_burst) == 3


def test_mshrs_limit_outstanding_loads():
    config = CoreConfig(window_size=128, mshrs=2)
    core, port = run_core(loads(8, gap=0), config)
    first_burst = [t for t, _, _ in port.issues if t < LATENCY]
    assert len(first_burst) == 2


def test_stores_do_not_block_commit():
    entries = [TraceEntry(0, i * 64, is_write=True) for i in range(5)]
    core, _ = run_core(entries)
    snap = core.snapshot
    assert snap.stores == 5
    assert snap.stall_cycles == 0


def test_stores_are_issued_to_memory():
    entries = [TraceEntry(0, 0, is_write=True), TraceEntry(0, 64)]
    core, port = run_core(entries)
    assert any(w for _, _, w in port.issues)


def test_snapshot_taken_at_first_completion_with_repeat():
    core, port = run_core(loads(4), repeat=True)
    snap = core.snapshot
    assert core.finished is True
    assert snap.loads == 4
    # The core kept running after the snapshot (repeat mode).
    assert core.loads_issued >= snap.loads


def test_no_repeat_core_stops():
    core, port = run_core(loads(4), repeat=False)
    assert core.loads_issued == 4


def test_mcpi_and_ipc_consistency():
    core, _ = run_core(loads(6))
    snap = core.snapshot
    assert snap.mcpi == pytest.approx(snap.stall_cycles / snap.instructions)
    assert snap.ipc == pytest.approx(snap.instructions / snap.cycles)
    assert snap.avg_stall_per_request == pytest.approx(snap.stall_cycles / snap.loads)


def test_ipc_bounded_by_width():
    core, _ = run_core([TraceEntry(1000, 0)], latency=0)
    assert core.snapshot.ipc <= CoreConfig().width + 1e-9


def test_retired_never_exceeds_dispatched():
    core, _ = run_core(loads(20))
    assert core._retired <= core._dispatched


def test_zero_latency_memory_still_finishes():
    core, _ = run_core(loads(5), latency=0)
    assert core.snapshot is not None
    assert core.snapshot.stall_cycles <= 5
