"""Tests for the `campaign` and `cache` CLI subcommands."""

import json

import pytest

from repro.__main__ import main

SMOKE_SPEC = {
    "name": "clismoke",
    "schedulers": ["FCFS"],
    "mix_count": 1,
    "instructions": 20000,
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SMOKE_SPEC))
    return str(path)


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "store.sqlite")


def test_campaign_dry_run(capsys, spec_path, db_path):
    assert main(["campaign", "run", spec_path, "--db", db_path, "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "clismoke" in out
    assert "total: 1 jobs" in out


def test_campaign_run_status_resume_report_export(capsys, spec_path, db_path):
    assert main(["campaign", "run", spec_path, "--db", db_path]) == 0
    out = capsys.readouterr().out
    assert "campaign clismoke: total=1 ran=1 skipped=0 failed=0 deferred=0" in out

    assert main(["campaign", "status", spec_path, "--db", db_path]) == 0
    assert "1/1 done" in capsys.readouterr().out

    # resume re-simulates nothing
    assert main(["campaign", "resume", spec_path, "--db", db_path]) == 0
    assert "ran=0 skipped=1" in capsys.readouterr().out

    assert main(["campaign", "report", spec_path, "--db", db_path]) == 0
    report = capsys.readouterr().out
    assert "# Campaign clismoke" in report
    assert "FCFS" in report

    assert main(
        ["campaign", "export", spec_path, "--db", db_path, "--format", "csv"]
    ) == 0
    export = capsys.readouterr().out
    assert export.splitlines()[0].startswith("key,num_cores,seed")
    assert len(export.splitlines()) == 2


def test_campaign_report_to_file(capsys, spec_path, db_path, tmp_path):
    assert main(["campaign", "run", spec_path, "--db", db_path]) == 0
    capsys.readouterr()
    out_file = tmp_path / "report.md"
    assert main(
        ["campaign", "report", spec_path, "--db", db_path, "--out", str(out_file)]
    ) == 0
    assert "# Campaign clismoke" in out_file.read_text()


def test_campaign_status_lists_store(capsys, spec_path, db_path):
    assert main(["campaign", "status", "--db", db_path]) == 0
    assert "no campaigns" in capsys.readouterr().out
    assert main(["campaign", "run", spec_path, "--db", db_path]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "--db", db_path]) == 0
    assert "clismoke" in capsys.readouterr().out


def test_campaign_instructions_flag_overrides_spec(capsys, spec_path, db_path):
    assert main(
        ["--instructions", "25000", "campaign", "run", spec_path, "--db", db_path, "--dry-run"]
    ) == 0
    assert "instructions/thread: 25000" in capsys.readouterr().out


def test_campaign_limit_defers(capsys, tmp_path, db_path):
    path = tmp_path / "two.json"
    path.write_text(
        json.dumps({**SMOKE_SPEC, "schedulers": ["FCFS", "FR-FCFS"]})
    )
    assert main(["campaign", "run", str(path), "--db", db_path, "--limit", "1"]) == 0
    assert "ran=1 skipped=0 failed=0 deferred=1" in capsys.readouterr().out


def test_campaign_trace_writes_events(capsys, spec_path, db_path, tmp_path, monkeypatch):
    trace_dir = tmp_path / "traces"
    import os

    try:
        assert main(
            ["--trace", str(trace_dir), "campaign", "run", spec_path, "--db", db_path]
        ) == 0
    finally:
        for name in ("REPRO_TRACE", "REPRO_TRACE_EVENTS"):
            os.environ.pop(name, None)
    events = [
        json.loads(line)
        for line in (trace_dir / "campaign-clismoke.jsonl").read_text().splitlines()
    ]
    assert events[0]["ev"] == "campaign.start"
    assert events[-1]["ev"] == "campaign.done"


def test_cache_stats_and_clear(capsys, spec_path, db_path):
    assert main(["campaign", "run", spec_path, "--db", db_path]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "cache dir:" in out
    assert "total:" in out
    assert main(["cache", "clear"]) == 0
    assert "cleared" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "total: 0 entries" in capsys.readouterr().out


def test_cache_prune_requires_bound(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    assert main(["cache", "prune"]) == 2
    assert "REPRO_CACHE_MAX_MB" in capsys.readouterr().err


def test_cache_prune_with_bound(capsys, spec_path, db_path):
    assert main(["campaign", "run", spec_path, "--db", db_path]) == 0
    capsys.readouterr()
    assert main(["cache", "prune", "--max-mb", "0"]) == 0
    assert "pruned" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "total: 0 entries" in capsys.readouterr().out


def test_envknob_error_exits_2(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS", "lots")
    assert main(["--instructions", "20000", "aggregate", "--cores", "4"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: REPRO_WORKLOADS")
    assert "lots" in err
