"""Tests for the process-parallel experiment engine and the disk cache."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.config import baseline_system
from repro.sim import diskcache
from repro.sim.diskcache import DiskCache, cache_enabled, clear_cache, content_key
from repro.sim.pool import SimJob, default_jobs, run_job, run_jobs
from repro.sim.runner import ExperimentRunner

INSTRUCTIONS = 20_000
WORKLOAD = ["mcf", "libquantum", "omnetpp", "hmmer"]
SCHEDULERS = ["FR-FCFS", "PAR-BS"]


# -- job descriptions ----------------------------------------------------------
def test_sim_job_is_picklable(tmp_path):
    job = SimJob(
        config=baseline_system(4),
        workload=tuple(WORKLOAD),
        scheduler="PAR-BS",
        scheduler_kwargs={"marking_cap": 5},
        instructions=INSTRUCTIONS,
        seed=3,
        cache_dir=str(tmp_path),
    )
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job
    assert clone.runner_key() == job.runner_key()


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1


# -- disk cache ----------------------------------------------------------------
def test_content_key_stability_and_sensitivity():
    config = baseline_system(4)
    assert content_key([config, 1]) == content_key([baseline_system(4), 1])
    assert content_key([config, 1]) != content_key([config, 2])
    assert content_key([config, 1]) != content_key([baseline_system(8), 1])


def test_disk_cache_roundtrip_and_clear(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get("alone", "k") is None
    cache.put("alone", "k", {"ipc": 1.25})
    assert cache.get("alone", "k") == {"ipc": 1.25}
    assert cache.stats() == {"hits": 1, "misses": 1, "writes": 1, "quarantined": 0}
    assert clear_cache(tmp_path) == 1
    assert cache.get("alone", "k") is None


def test_disk_cache_drops_corrupt_entries(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("trace", "bad", [1, 2, 3])
    path = cache._path("trace", "bad")
    path.write_text("{not json")
    assert cache.get("trace", "bad") is None
    assert not path.exists()


def _put_sized(cache: DiskCache, kind: str, key: str, kilobytes: int) -> None:
    cache.put(kind, key, "x" * (kilobytes * 1024))


def test_cache_size_accounting(tmp_path):
    cache = DiskCache(tmp_path)
    _put_sized(cache, "alone", "a", 10)
    _put_sized(cache, "trace", "b", 20)
    usage = cache.usage()
    assert usage["alone"][0] == 1 and usage["trace"][0] == 1
    assert cache.size_bytes() == sum(b for _n, b in usage.values())
    assert cache.size_bytes() > 30 * 1024


def test_prune_unbounded_is_noop(tmp_path):
    cache = DiskCache(tmp_path)  # no max_mb, no REPRO_CACHE_MAX_MB
    _put_sized(cache, "alone", "a", 10)
    assert cache.prune() == (0, 0)
    assert cache.get("alone", "a") is not None


def test_prune_evicts_oldest_mtime_first(tmp_path):
    cache = DiskCache(tmp_path)
    for i, key in enumerate(("old", "mid", "new")):
        _put_sized(cache, "alone", key, 100)
        os.utime(cache._path("alone", key), (i, i))  # deterministic mtimes
    removed, freed = cache.prune(max_mb=0.12)  # keeps ~one 100 KB entry
    assert removed == 2
    assert freed > 0
    assert cache.get("alone", "new") is not None
    assert cache.get("alone", "old") is None
    assert cache.get("alone", "mid") is None


def test_hit_touches_mtime_for_lru(tmp_path):
    cache = DiskCache(tmp_path)
    for i, key in enumerate(("first", "second")):
        _put_sized(cache, "alone", key, 100)
        os.utime(cache._path("alone", key), (i, i))
    # Touch "first": it becomes most-recently-used and must survive.
    assert cache.get("alone", "first") is not None
    cache.prune(max_mb=0.12)
    assert cache._path("alone", "first").exists()
    assert not cache._path("alone", "second").exists()


def test_bounded_cache_prunes_opportunistically(tmp_path):
    cache = DiskCache(tmp_path, max_mb=0.05)  # 50 KB budget
    for i in range(DiskCache.PRUNE_EVERY):
        _put_sized(cache, "alone", f"k{i}", 10)
    # The PRUNE_EVERY-th put triggered a prune back under budget.
    assert cache.pruned > 0
    assert cache.size_bytes() <= 0.05 * 1024 * 1024


def test_max_mb_resolved_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "12.5")
    assert DiskCache(tmp_path).max_mb == 12.5
    monkeypatch.delenv("REPRO_CACHE_MAX_MB")
    assert DiskCache(tmp_path).max_mb is None


def test_cache_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert not cache_enabled()
    assert ExperimentRunner(instructions=INSTRUCTIONS).disk_cache is None


# -- serial/parallel equivalence ----------------------------------------------
@pytest.fixture(scope="module")
def serial_results():
    # jobs=1 pins the serial path even if REPRO_JOBS is set in the
    # environment (CI runs this file with REPRO_JOBS=2).
    runner = ExperimentRunner(
        baseline_system(4), instructions=INSTRUCTIONS, jobs=1, cache_dir=None
    )
    return runner.compare_schedulers(WORKLOAD, SCHEDULERS)


def test_parallel_matches_serial_bit_identical(tmp_path, serial_results):
    runner = ExperimentRunner(
        baseline_system(4),
        instructions=INSTRUCTIONS,
        jobs=2,
        cache_dir=tmp_path / "cache",
    )
    parallel = runner.compare_schedulers(WORKLOAD, SCHEDULERS)
    # WorkloadResult is a frozen dataclass tree of exact ints/floats, so
    # equality here means bit-identical metrics, thread by thread.
    assert parallel == serial_results


def test_second_run_hits_disk_cache(tmp_path, serial_results):
    cache_dir = tmp_path / "cache"
    first = ExperimentRunner(
        baseline_system(4), instructions=INSTRUCTIONS, cache_dir=cache_dir
    )
    r1 = first.compare_schedulers(WORKLOAD, SCHEDULERS)
    assert first.disk_cache.writes > 0

    second = ExperimentRunner(
        baseline_system(4), instructions=INSTRUCTIONS, cache_dir=cache_dir
    )
    r2 = second.compare_schedulers(WORKLOAD, SCHEDULERS)
    stats = second.disk_cache.stats()
    assert stats["misses"] == 0 and stats["writes"] == 0
    assert stats["hits"] > 0
    assert r1 == r2 == serial_results


def test_run_job_standalone_matches_runner(tmp_path, serial_results):
    job = SimJob(
        config=baseline_system(4),
        workload=tuple(WORKLOAD),
        scheduler="PAR-BS",
        instructions=INSTRUCTIONS,
        cache_dir=str(tmp_path / "cache"),
    )
    assert run_job(job) == serial_results["PAR-BS"]
    # run_jobs with workers=1 stays in-process and preserves order.
    jobs = [
        SimJob(
            config=baseline_system(4),
            workload=tuple(WORKLOAD),
            scheduler=name,
            instructions=INSTRUCTIONS,
            cache_dir=str(tmp_path / "cache"),
        )
        for name in SCHEDULERS
    ]
    assert run_jobs(jobs, workers=1) == [serial_results[n] for n in SCHEDULERS]


def test_run_many_mixed_specs_order(tmp_path, serial_results):
    runner = ExperimentRunner(
        baseline_system(4),
        instructions=INSTRUCTIONS,
        cache_dir=tmp_path / "cache",
    )
    specs = [(WORKLOAD, name, {}) for name in reversed(SCHEDULERS)]
    results = runner.run_many(specs, jobs=2)
    assert [r.scheduler for r in results] == list(reversed(SCHEDULERS))
    assert results[-1] == serial_results[SCHEDULERS[0]]


def test_global_stats_accumulate(tmp_path):
    before = dict(diskcache.GLOBAL_STATS)
    cache = DiskCache(tmp_path)
    cache.put("alone", "x", 1)
    cache.get("alone", "x")
    assert diskcache.GLOBAL_STATS["writes"] == before["writes"] + 1
    assert diskcache.GLOBAL_STATS["hits"] == before["hits"] + 1


# -- wall-clock speedup (needs real cores) -------------------------------------
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="parallel speedup needs >= 4 CPUs"
)
def test_parallel_wall_clock_speedup(tmp_path):
    cache_dir = tmp_path / "cache"
    runner = ExperimentRunner(
        baseline_system(4), instructions=60_000, cache_dir=cache_dir
    )
    # Warm alone baselines + traces so both timings measure only the
    # shared-run simulations.
    for benchmark in set(WORKLOAD):
        runner.alone(benchmark)

    start = time.perf_counter()
    serial = runner.compare_schedulers(WORKLOAD, jobs=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = runner.compare_schedulers(WORKLOAD, jobs=4)
    t_parallel = time.perf_counter() - start

    assert parallel == serial
    # Five independent scheduler runs over four workers; allow generous
    # headroom below the ideal bound for fork + pickle overhead.
    assert t_serial / t_parallel >= 2.0, (t_serial, t_parallel)
