"""Unit tests for instruction traces."""

import pytest

from repro.cpu.trace import Trace, TraceEntry


def test_entry_validation():
    with pytest.raises(ValueError):
        TraceEntry(gap=-1, address=0)
    with pytest.raises(ValueError):
        TraceEntry(gap=0, address=-64)
    with pytest.raises(ValueError):
        TraceEntry(gap=0, address=0, depends_on=-1)


def test_total_instructions_counts_gaps_and_accesses():
    trace = Trace([TraceEntry(9, 0), TraceEntry(4, 64)])
    assert trace.total_instructions == 15


def test_memory_access_counters():
    trace = Trace(
        [TraceEntry(0, 0), TraceEntry(0, 64, is_write=True), TraceEntry(0, 128)]
    )
    assert trace.memory_accesses == 3
    assert trace.reads == 2
    assert trace.writes == 1


def test_accesses_per_kilo_instruction():
    trace = Trace([TraceEntry(99, i * 64) for i in range(10)])
    assert trace.accesses_per_kilo_instruction() == pytest.approx(10.0)


def test_empty_trace():
    trace = Trace([])
    assert len(trace) == 0
    assert trace.total_instructions == 0
    assert trace.accesses_per_kilo_instruction() == 0.0


def test_iteration_and_indexing():
    entries = [TraceEntry(1, 64), TraceEntry(2, 128)]
    trace = Trace(entries)
    assert list(trace) == entries
    assert trace[1].address == 128


def test_save_load_roundtrip(tmp_path):
    entries = [
        TraceEntry(5, 64),
        TraceEntry(0, 128, is_write=True),
        TraceEntry(3, 192, depends_on=0),
    ]
    trace = Trace(entries, name="demo")
    path = tmp_path / "trace.jsonl"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.name == "demo"
    assert list(loaded) == entries


def test_load_without_depends_on_field(tmp_path):
    path = tmp_path / "legacy.jsonl"
    path.write_text('{"name": "legacy"}\n[3, 64, false]\n')
    loaded = Trace.load(path)
    assert loaded[0] == TraceEntry(3, 64)
    assert loaded[0].depends_on is None
