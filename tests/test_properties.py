"""Property-based tests (hypothesis) for core data structures and
simulator invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig
from repro.core.abstract_model import AbstractBatch, AbstractRequest
from repro.core.ranking import MaxTotalRanking, batch_loads
from repro.dram.bank import Bank
from repro.dram.bus import DataBus
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import ddr2_800
from repro.events import EventQueue
from repro.metrics.fairness import unfairness
from repro.metrics.speedup import hmean_speedup, weighted_speedup
from repro.schedulers.frfcfs import FrFcfsScheduler
from repro.core.parbs import ParBsScheduler

# ---------------------------------------------------------------- strategies

request_specs = st.lists(
    st.tuples(
        st.integers(0, 3),  # thread
        st.integers(0, 7),  # bank
        st.integers(0, 15),  # row
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=40,
)


def build_requests(specs):
    return [
        MemoryRequest(
            thread_id=t,
            address=0,
            channel=0,
            bank=b,
            row=r,
            type=RequestType.WRITE if w else RequestType.READ,
        )
        for (t, b, r, w) in specs
    ]


# ---------------------------------------------------------------- metrics


@given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=16))
def test_unfairness_at_least_one(slowdowns):
    assert unfairness(slowdowns) >= 1.0


@given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=16))
def test_unfairness_scale_invariant(slowdowns):
    scaled = [2.5 * s for s in slowdowns]
    assert abs(unfairness(scaled) - unfairness(slowdowns)) < 1e-9


@given(
    st.lists(
        st.tuples(st.floats(0.01, 3.0), st.floats(0.01, 3.0)),
        min_size=1,
        max_size=16,
    )
)
def test_speedup_bounds(pairs):
    shared = [min(s, a) for s, a in pairs]  # shared IPC cannot exceed alone
    alone = [a for _, a in pairs]
    n = len(pairs)
    ws = weighted_speedup(shared, alone)
    hs = hmean_speedup(shared, alone)
    assert 0 < ws <= n + 1e-9
    assert 0 < hs <= 1 + 1e-9
    # Harmonic mean <= arithmetic mean of the same ratios.
    assert hs <= ws / n + 1e-9


# ---------------------------------------------------------------- ranking


@given(request_specs)
def test_max_total_ranks_form_permutation(specs):
    requests = build_requests(specs)
    ranks = MaxTotalRanking(seed=1).rank(requests, threads=range(4))
    assert sorted(ranks.values()) == list(range(4))


@given(request_specs)
def test_batch_loads_consistency(specs):
    requests = build_requests(specs)
    max_load, total = batch_loads(requests)
    for thread, t in total.items():
        assert 1 <= max_load[thread] <= t
    assert sum(total.values()) == len(requests)


@given(request_specs)
def test_zero_load_threads_outrank_loaded_threads(specs):
    requests = build_requests(specs)
    loaded = {r.thread_id for r in requests}
    ranks = MaxTotalRanking(seed=0).rank(requests, threads=range(5))
    idle = set(range(5)) - loaded
    for idle_thread in idle:
        for busy_thread in loaded:
            assert ranks[idle_thread] < ranks[busy_thread]


# ---------------------------------------------------------------- abstract model


@given(
    st.lists(
        st.tuples(st.integers(1, 4), st.integers(0, 3), st.integers(0, 5)),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=60)
def test_abstract_schedule_conservation(reqs):
    batch = AbstractBatch([AbstractRequest(*r) for r in reqs])
    for policy in ("fcfs", "fr-fcfs", "par-bs"):
        result = batch.schedule(policy)
        # Every thread completes, and no earlier than its request count / banks.
        assert set(result.completion) == {r[0] for r in reqs}
        total_scheduled = sum(len(v) for v in result.bank_order.values())
        assert total_scheduled == len(reqs)
        for t, completion in result.completion.items():
            own = sum(1 for r in reqs if r[0] == t)
            assert completion >= Fraction(1, 2) * 1  # at least one access
            assert completion <= len(reqs)  # cannot exceed serializing all


@given(
    st.lists(
        st.tuples(st.integers(1, 4), st.integers(0, 3), st.integers(0, 5)),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=60)
def test_frfcfs_average_not_worse_than_fcfs_in_abstract_model(reqs):
    batch = AbstractBatch([AbstractRequest(*r) for r in reqs])
    fcfs = batch.schedule("fcfs").average_completion
    frfcfs = batch.schedule("fr-fcfs").average_completion
    # Row-hit-first can only reduce total service time per bank.
    assert frfcfs <= fcfs + Fraction(1, 2)


# ---------------------------------------------------------------- DRAM invariants


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 200)), min_size=1, max_size=30))
@settings(max_examples=50)
def test_bank_accesses_never_overlap(accesses):
    timing = ddr2_800()
    bank = Bank(timing)
    bus = DataBus(timing)
    now = 0
    last_completion = 0
    for row, delay in accesses:
        now += delay
        outcome = bank.service(
            MemoryRequest(thread_id=0, address=0, channel=0, bank=0, row=row),
            now,
            bus,
        )
        assert outcome.start >= min(now, last_completion)
        assert outcome.completion > outcome.start
        assert outcome.start >= last_completion or outcome.start >= now
        # Bank is exclusive: a new access starts only after the previous done.
        assert outcome.start >= last_completion - timing.tBUS or last_completion == 0
        last_completion = outcome.completion


@given(st.lists(st.integers(0, 500), min_size=1, max_size=30))
@settings(max_examples=50)
def test_bus_transfers_never_overlap(earliest_times):
    timing = ddr2_800()
    bus = DataBus(timing)
    intervals = []
    for earliest in sorted(earliest_times):
        start = bus.reserve(earliest)
        intervals.append((start, start + timing.tBUS))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1


@given(request_specs)
@settings(max_examples=30, deadline=None)
def test_controller_completes_everything_frfcfs(specs):
    queue = EventQueue()
    controller = MemoryController(queue, DramConfig(), FrFcfsScheduler(), 4)
    done = []
    requests = build_requests(specs)
    for r in requests:
        if r.is_read:
            r.on_complete = lambda _r: done.append(1)
        controller.enqueue(r)
    queue.run()
    reads = sum(1 for r in requests if r.is_read)
    assert len(done) == reads
    assert controller.outstanding() == 0
    for r in requests:
        assert r.completion_time is not None
        assert r.completion_time > r.arrival_time


@given(request_specs)
@settings(max_examples=30, deadline=None)
def test_controller_completes_everything_parbs(specs):
    queue = EventQueue()
    controller = MemoryController(queue, DramConfig(), ParBsScheduler(4), 4)
    requests = build_requests(specs)
    for r in requests:
        controller.enqueue(r)
    queue.run()
    assert controller.outstanding() == 0
    scheduler = controller.scheduler
    assert scheduler.batcher.total_marked == 0
