"""Tests for ``campaign watch``, run manifests, and progress heartbeats.

The acceptance bar from the observability plane:

* watch counts on an interrupted campaign match the store exactly;
* a serial run and a ``--jobs 2`` run of the same campaign merge to
  **identical** ``sim.*`` metrics (wall-time fields excluded by
  construction — they live under ``wall.*``/``ops.*``);
* the run manifest is pinned at run start (no timestamps — byte
  reproducible) and embedded in reports/exports;
* every committed job leaves a latest-attempt progress row carrying the
  worker id, wall time and the deterministic metrics blob.
"""

from __future__ import annotations

import json

from repro.campaign.manifest import build_manifest
from repro.campaign.orchestrator import run_campaign
from repro.campaign.report import campaign_report, export_text
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import ResultStore
from repro.campaign.watch import merged_metrics, watch_counts, watch_report
from repro.__main__ import main


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="watchtest",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=20_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def test_watch_counts_match_store_on_interrupted_campaign(tmp_path):
    spec = _spec()
    db = tmp_path / "db.sqlite"
    with ResultStore(db) as store:
        run_campaign(spec, store, jobs=1, limit=1)
        counts = watch_counts(spec, store)
        store_counts = store.counts(spec.fingerprint())
        assert counts["done"] == store_counts["done"] == 1
        assert counts["failed"] == store_counts["failed"] == 0
        assert counts["pending"] == 3
        assert counts["total"] == 4
        report = watch_report(spec, store)
        assert "jobs: 1/4 done, 3 pending, 0 failed, 0 retrying" in report
        assert "by variant:" in report
        # Resume to completion: counts converge with the store again.
        run_campaign(spec, store, jobs=1)
        counts = watch_counts(spec, store)
        assert counts["done"] == store.counts(spec.fingerprint())["done"] == 4
        assert counts["pending"] == 0


def test_serial_and_parallel_sim_metrics_identical(tmp_path):
    """The CI-gated determinism contract: ``sim.*`` names of the merged
    snapshot are bit-identical between a serial and a ``--jobs 2`` run
    (separate stores and caches, so nothing is shared)."""
    spec = _spec()

    def sim_metrics(tag: str, jobs: int) -> dict:
        db = tmp_path / f"{tag}.sqlite"
        with ResultStore(db) as store:
            stats = run_campaign(spec, store, jobs=jobs)
            assert stats.failed == 0
            snapshot = merged_metrics(spec, store).snapshot()
        return {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("sim.")
        }

    serial = sim_metrics("serial", 1)
    parallel = sim_metrics("parallel", 2)
    assert serial  # non-empty: the gate is comparing something real
    assert serial == parallel


def test_manifest_pinned_at_run_start_and_reproducible(tmp_path):
    spec = _spec()
    db = tmp_path / "db.sqlite"
    with ResultStore(db) as store:
        run_campaign(spec, store, jobs=1, limit=1)  # interrupted
        stored = store.manifest(spec.fingerprint())
        assert stored is not None
        assert stored == build_manifest(spec)
        assert stored["jobs_total"] == 4
        assert stored["campaign"] == "watchtest"
        assert stored["fingerprint"] == spec.fingerprint()
        assert stored["variants"] == ["FCFS", "FR-FCFS"]
        # No wall-clock anywhere: resume rewrites identical bytes.
        run_campaign(spec, store, jobs=1)
        assert store.manifest(spec.fingerprint()) == stored


def test_manifest_embedded_in_report_and_json_export(tmp_path):
    spec = _spec()
    db = tmp_path / "db.sqlite"
    with ResultStore(db) as store:
        run_campaign(spec, store, jobs=1)
        report = campaign_report(spec, store)
        assert "## Run manifest" in report
        assert f"- fingerprint: {spec.fingerprint()}" in report
        assert "- source: stored" in report
        head = json.loads(export_text(spec, store, fmt="json").splitlines()[0])
        assert head["manifest"]["fingerprint"] == spec.fingerprint()
    # An unran campaign still reports a (computed) manifest.
    with ResultStore(tmp_path / "empty.sqlite") as store:
        assert "- source: computed" in campaign_report(spec, store)


def test_progress_rows_carry_worker_wall_and_metrics(tmp_path):
    spec = _spec()
    db = tmp_path / "db.sqlite"
    with ResultStore(db) as store:
        run_campaign(spec, store, jobs=1)
        grid = spec.expand()
        progress = store.progress_for(job.key for job in grid)
        assert set(progress) == {job.key for job in grid}
        for row in progress.values():
            assert row["status"] == "done"
            assert row["attempt"] == 0
            assert row["worker"]  # pid string
            assert row["wall_time_s"] > 0
            assert row["events_per_sec"] > 0
            assert row["metrics"]["sim.events_logical"] > 0
            assert row["updated_at"] is not None


def test_watch_cli_once_reports_store_counts(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(
        json.dumps(
            {
                "name": "watchcli",
                "variants": [{"label": "FCFS", "scheduler": "FCFS"}],
                "mix_count": 2,
                "instructions": 20_000,
            }
        )
    )
    db = str(tmp_path / "db.sqlite")
    assert main(["campaign", "run", str(spec_file), "--db", db, "--limit", "1"]) == 0
    capsys.readouterr()
    json_out = tmp_path / "metrics.json"
    prom_out = tmp_path / "metrics.prom"
    assert (
        main(
            [
                "campaign", "watch", str(spec_file), "--db", db, "--once",
                "--metrics-json", str(json_out),
                "--metrics-prom", str(prom_out),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "jobs: 1/2 done, 1 pending, 0 failed, 0 retrying" in out
    snapshot = json.loads(json_out.read_text())
    assert snapshot["counters"]["sim.events_logical"] > 0
    assert "repro_sim_events_logical_total" in prom_out.read_text()
