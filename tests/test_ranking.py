"""Unit tests for within-batch thread ranking schemes."""

import pytest

from repro.core.ranking import (
    MaxTotalRanking,
    RandomRanking,
    RoundRobinRanking,
    TotalMaxRanking,
    batch_loads,
    make_ranking,
)
from repro.dram.request import MemoryRequest


def req(thread, bank, channel=0):
    return MemoryRequest(thread_id=thread, address=0, channel=channel, bank=bank, row=0)


def spread(thread, banks):
    """One request per bank for `thread`."""
    return [req(thread, b) for b in banks]


def pile(thread, bank, count):
    """`count` requests to one bank."""
    return [req(thread, bank) for _ in range(count)]


def test_batch_loads_counts_max_and_total():
    requests = spread(0, [0, 1, 2]) + pile(1, 0, 4)
    max_load, total = batch_loads(requests)
    assert max_load[0] == 1 and total[0] == 3
    assert max_load[1] == 4 and total[1] == 4


def test_batch_loads_distinguishes_channels():
    requests = [req(0, bank=0, channel=0), req(0, bank=0, channel=1)]
    max_load, _ = batch_loads(requests)
    assert max_load[0] == 1  # same bank index, different channels


def test_max_total_prefers_low_max_bank_load():
    # Thread 0: 3 requests spread (max 1); thread 1: 2 requests piled (max 2).
    requests = spread(0, [0, 1, 2]) + pile(1, 3, 2)
    ranks = MaxTotalRanking().rank(requests)
    assert ranks[0] < ranks[1]


def test_max_total_tie_broken_by_total():
    # Both max-bank-load 1; thread 1 has fewer total requests.
    requests = spread(0, [0, 1, 2]) + spread(1, [3, 4])
    ranks = MaxTotalRanking().rank(requests)
    assert ranks[1] < ranks[0]


def test_total_max_prefers_low_total_first():
    # Thread 0: total 2 but piled (max 2); thread 1: total 3 spread (max 1).
    requests = pile(0, 0, 2) + spread(1, [1, 2, 3])
    assert TotalMaxRanking().rank(requests)[0] < TotalMaxRanking().rank(requests)[1]
    # Max-Total ranks them the other way.
    ranks = MaxTotalRanking().rank(requests)
    assert ranks[1] < ranks[0]


def test_threads_without_requests_rank_highest():
    requests = pile(0, 0, 5)
    ranks = MaxTotalRanking().rank(requests, threads=range(3))
    assert ranks[1] < ranks[0]
    assert ranks[2] < ranks[0]


def test_rank_covers_requested_universe():
    ranks = MaxTotalRanking().rank([], threads=range(4))
    assert sorted(ranks) == [0, 1, 2, 3]
    assert sorted(ranks.values()) == [0, 1, 2, 3]


def test_random_ranking_is_seeded():
    requests = spread(0, [0]) + spread(1, [1]) + spread(2, [2])
    a = RandomRanking(seed=3).rank(requests)
    b = RandomRanking(seed=3).rank(requests)
    assert a == b


def test_random_ranking_varies_across_batches():
    requests = [req(t, t) for t in range(6)]
    ranker = RandomRanking(seed=0)
    outcomes = {tuple(sorted(ranker.rank(requests).items())) for _ in range(10)}
    assert len(outcomes) > 1


def test_round_robin_rotates_each_batch():
    requests = [req(t, t) for t in range(3)]
    ranker = RoundRobinRanking()
    first = ranker.rank(requests)
    second = ranker.rank(requests)
    assert first != second
    # Every thread is top-ranked once per cycle of three batches.
    third = ranker.rank(requests)
    tops = {min(r, key=r.get) for r in (first, second, third)}
    assert tops == {0, 1, 2}


def test_round_robin_empty():
    assert RoundRobinRanking().rank([]) == {}


def test_make_ranking_by_name():
    assert isinstance(make_ranking("max-total"), MaxTotalRanking)
    assert isinstance(make_ranking("total-max"), TotalMaxRanking)
    assert isinstance(make_ranking("random"), RandomRanking)
    assert isinstance(make_ranking("round-robin"), RoundRobinRanking)


def test_make_ranking_unknown_name():
    with pytest.raises(ValueError):
        make_ranking("alphabetical")


def test_ranks_are_dense_permutation():
    requests = spread(0, [0, 1]) + pile(1, 2, 3) + spread(2, [3])
    ranks = MaxTotalRanking().rank(requests)
    assert sorted(ranks.values()) == [0, 1, 2]
