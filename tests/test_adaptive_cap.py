"""Tests for the adaptive Marking-Cap extension (paper future work)."""

import pytest

from repro.config import DramConfig
from repro.core.batcher import AdaptiveCapBatcher
from repro.core.parbs import ParBsScheduler
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.events import EventQueue
from repro.sim.runner import ExperimentRunner


def test_parameter_validation():
    with pytest.raises(ValueError):
        AdaptiveCapBatcher(min_cap=3, initial_cap=2)
    with pytest.raises(ValueError):
        AdaptiveCapBatcher(initial_cap=30, max_cap=20)
    with pytest.raises(ValueError):
        AdaptiveCapBatcher(target_duration=0)


def test_cap_increases_for_fast_batches():
    batcher = AdaptiveCapBatcher(target_duration=1000, initial_cap=5)
    batcher._batch_start_time = 0
    # Avoid forming real batches: no controller attached -> stub.
    batcher._form_batch = lambda now: None
    batcher._batch_finished(now=100)  # far below target/2
    assert batcher.marking_cap == 6


def test_cap_decreases_for_slow_batches():
    batcher = AdaptiveCapBatcher(target_duration=1000, initial_cap=5)
    batcher._batch_start_time = 0
    batcher._form_batch = lambda now: None
    batcher._batch_finished(now=5000)  # above 2x target
    assert batcher.marking_cap == 4


def test_cap_stays_within_bounds():
    batcher = AdaptiveCapBatcher(
        target_duration=1000, initial_cap=1, min_cap=1, max_cap=2
    )
    batcher._form_batch = lambda now: None
    batcher._batch_start_time = 0
    batcher._batch_finished(now=10_000)
    assert batcher.marking_cap == 1  # clamped at min
    batcher._batch_start_time = 10_000
    batcher._batch_finished(now=10_001)
    batcher._batch_start_time = 10_001
    batcher._batch_finished(now=10_002)
    assert batcher.marking_cap == 2  # clamped at max


def test_cap_history_recorded():
    batcher = AdaptiveCapBatcher(target_duration=1000)
    batcher._form_batch = lambda now: None
    batcher._batch_start_time = 0
    batcher._batch_finished(now=10)
    assert batcher.cap_history[-1] == batcher.marking_cap
    assert len(batcher.cap_history) == 2


def test_parbs_adaptive_variant_constructs():
    scheduler = ParBsScheduler(4, batching="adaptive")
    assert isinstance(scheduler.batcher, AdaptiveCapBatcher)
    assert "adaptive" in scheduler.name


def test_adaptive_end_to_end():
    queue = EventQueue()
    scheduler = ParBsScheduler(4, batching="adaptive")
    controller = MemoryController(queue, DramConfig(), scheduler, 4)
    done = []
    for i in range(40):
        r = MemoryRequest(thread_id=i % 4, address=0, channel=0, bank=i % 8, row=i)
        r.on_complete = lambda _r: done.append(1)
        controller.enqueue(r)
    queue.run()
    assert len(done) == 40
    assert scheduler.batcher.total_marked == 0


def test_adaptive_runs_full_workload():
    runner = ExperimentRunner(instructions=20_000)
    result = runner.run_workload(
        ["hmmer", "astar", "gromacs", "sjeng"], "PAR-BS", batching="adaptive"
    )
    assert result.unfairness >= 1.0
    assert all(t.memory_slowdown >= 1.0 for t in result.threads)
